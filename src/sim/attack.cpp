#include "sim/attack.hpp"

#include <cmath>
#include <stdexcept>

namespace sim {

std::vector<LabeledCapture> make_normal_stream(
    Vehicle& vehicle, std::size_t count, const analog::Environment& env) {
  std::vector<LabeledCapture> out;
  out.reserve(count);
  for (Capture& cap : vehicle.capture(count, env)) {
    out.push_back(LabeledCapture{std::move(cap), false});
  }
  return out;
}

std::vector<LabeledCapture> make_hijack_stream(
    Vehicle& vehicle, std::size_t count, double attack_prob,
    const analog::Environment& env) {
  const auto& ecus = vehicle.config().ecus;
  if (ecus.size() < 2) {
    throw std::invalid_argument("make_hijack_stream: need >= 2 ECUs");
  }

  // SAs grouped by owner, for picking a victim from another cluster.
  std::vector<std::vector<std::uint8_t>> sas_by_ecu;
  sas_by_ecu.reserve(ecus.size());
  for (const auto& ecu : ecus) sas_by_ecu.push_back(ecu.source_addresses());

  std::vector<LabeledCapture> out;
  out.reserve(count);
  for (const canbus::Transmission& tx : vehicle.schedule(count)) {
    const std::size_t attacker = tx.node;
    canbus::DataFrame frame = tx.frame;
    bool is_attack = false;
    if (vehicle.rng().bernoulli(attack_prob)) {
      // Pick a victim ECU other than the attacker, then one of its SAs.
      std::size_t victim = vehicle.rng().below(ecus.size() - 1);
      if (victim >= attacker) ++victim;
      const auto& victim_sas = sas_by_ecu[victim];
      frame.id.source_address =
          victim_sas[vehicle.rng().below(victim_sas.size())];
      is_attack = true;
    }
    Capture cap = vehicle.synthesize_message(frame, attacker, env, tx.start_s);
    out.push_back(LabeledCapture{std::move(cap), is_attack});
  }
  return out;
}

std::vector<LabeledCapture> make_foreign_stream(
    Vehicle& vehicle, std::size_t imitator, std::size_t target,
    std::size_t count, const analog::Environment& env) {
  const auto& ecus = vehicle.config().ecus;
  if (imitator >= ecus.size() || target >= ecus.size()) {
    throw std::invalid_argument("make_foreign_stream: ECU index out of range");
  }
  if (imitator == target) {
    throw std::invalid_argument(
        "make_foreign_stream: imitator must differ from target");
  }
  const auto target_sas = ecus[target].source_addresses();

  std::vector<LabeledCapture> out;
  out.reserve(count);
  for (const canbus::Transmission& tx : vehicle.schedule(count)) {
    canbus::DataFrame frame = tx.frame;
    bool is_attack = false;
    if (tx.node == imitator) {
      // The foreign device reuses the imitator's transmission slots but
      // crafts frames that claim to come from the target.
      frame.id.source_address =
          target_sas[vehicle.rng().below(target_sas.size())];
      is_attack = true;
    }
    Capture cap = vehicle.synthesize_message(frame, tx.node, env, tx.start_s);
    out.push_back(LabeledCapture{std::move(cap), is_attack});
  }
  return out;
}

namespace {

double lerp(double a, double b, double alpha) { return a + (b - a) * alpha; }

analog::EdgeDynamics blend_dynamics(const analog::EdgeDynamics& a,
                                    const analog::EdgeDynamics& b,
                                    double alpha) {
  analog::EdgeDynamics out;
  out.natural_freq_hz = lerp(a.natural_freq_hz, b.natural_freq_hz, alpha);
  out.damping = lerp(a.damping, b.damping, alpha);
  return out;
}

}  // namespace

analog::EcuSignature blend_signatures(const analog::EcuSignature& from,
                                      const analog::EcuSignature& to,
                                      double alpha) {
  analog::EcuSignature out;
  out.dominant =
      units::Volts{lerp(from.dominant.value(), to.dominant.value(), alpha)};
  out.recessive =
      units::Volts{lerp(from.recessive.value(), to.recessive.value(), alpha)};
  out.drive = blend_dynamics(from.drive, to.drive, alpha);
  out.release = blend_dynamics(from.release, to.release, alpha);
  out.noise_sigma = units::Volts{
      lerp(from.noise_sigma.value(), to.noise_sigma.value(), alpha)};
  out.edge_jitter = units::Seconds{
      lerp(from.edge_jitter.value(), to.edge_jitter.value(), alpha)};
  out.dominant_temp_coeff_v_per_c =
      lerp(from.dominant_temp_coeff_v_per_c, to.dominant_temp_coeff_v_per_c,
           alpha);
  out.freq_temp_coeff_per_c =
      lerp(from.freq_temp_coeff_per_c, to.freq_temp_coeff_per_c, alpha);
  out.dominant_vbat_coeff =
      lerp(from.dominant_vbat_coeff, to.dominant_vbat_coeff, alpha);
  out.temperature_coupling =
      lerp(from.temperature_coupling, to.temperature_coupling, alpha);
  return out;
}

std::vector<LabeledCapture> make_masquerade_stream(
    Vehicle& vehicle, std::size_t attacker, std::size_t victim,
    std::size_t count, double overdrive, const analog::Environment& env) {
  const auto& ecus = vehicle.config().ecus;
  if (attacker >= ecus.size() || victim >= ecus.size()) {
    throw std::invalid_argument(
        "make_masquerade_stream: ECU index out of range");
  }
  if (attacker == victim) {
    throw std::invalid_argument(
        "make_masquerade_stream: attacker must differ from victim");
  }

  // Two drivers on the bus at once: the differential levels superimpose
  // and the effective edge dynamics shift toward the stronger driver.
  // Uncorrelated noise sources add in quadrature.
  const analog::EcuSignature& vic = ecus[victim].signature;
  const analog::EcuSignature& atk = ecus[attacker].signature;
  analog::EcuSignature corrupted = vic;
  corrupted.dominant += overdrive * atk.dominant;
  corrupted.recessive += overdrive * atk.recessive;
  corrupted.drive = blend_dynamics(vic.drive, atk.drive, 0.5 * overdrive);
  corrupted.release = blend_dynamics(vic.release, atk.release, 0.5 * overdrive);
  corrupted.noise_sigma = units::Volts{
      std::hypot(vic.noise_sigma.value(), overdrive * atk.noise_sigma.value())};

  std::vector<LabeledCapture> out;
  out.reserve(count);
  for (const canbus::Transmission& tx : vehicle.schedule(count)) {
    const bool corrupt = tx.node == victim;
    Capture cap =
        corrupt
            ? vehicle.synthesize_foreign(tx.frame, corrupted, env, tx.start_s)
            : vehicle.synthesize_message(tx.frame, tx.node, env, tx.start_s);
    if (corrupt) cap.true_ecu = victim;
    out.push_back(LabeledCapture{std::move(cap), corrupt});
  }
  return out;
}

std::vector<LabeledCapture> make_imitation_sweep_stream(
    Vehicle& vehicle, std::size_t imitator, std::size_t target,
    std::size_t count, const analog::Environment& env) {
  const auto& ecus = vehicle.config().ecus;
  if (imitator >= ecus.size() || target >= ecus.size()) {
    throw std::invalid_argument(
        "make_imitation_sweep_stream: ECU index out of range");
  }
  if (imitator == target) {
    throw std::invalid_argument(
        "make_imitation_sweep_stream: imitator must differ from target");
  }
  const auto target_sas = ecus[target].source_addresses();

  const std::vector<canbus::Transmission> schedule = vehicle.schedule(count);
  std::size_t attack_slots = 0;
  for (const canbus::Transmission& tx : schedule) {
    if (tx.node == imitator) ++attack_slots;
  }

  std::vector<LabeledCapture> out;
  out.reserve(schedule.size());
  std::size_t attack_index = 0;
  for (const canbus::Transmission& tx : schedule) {
    if (tx.node != imitator) {
      Capture cap =
          vehicle.synthesize_message(tx.frame, tx.node, env, tx.start_s);
      out.push_back(LabeledCapture{std::move(cap), false});
      continue;
    }
    // Sweep the imitation factor over the attacker's transmissions: the
    // first attempt is the device's native signature, the last a perfect
    // parameter-space duplicate of the target.
    const double alpha =
        attack_slots > 1 ? static_cast<double>(attack_index) /
                               static_cast<double>(attack_slots - 1)
                         : 1.0;
    ++attack_index;
    const analog::EcuSignature sig = blend_signatures(
        ecus[imitator].signature, ecus[target].signature, alpha);
    canbus::DataFrame frame = tx.frame;
    frame.id.source_address =
        target_sas[vehicle.rng().below(target_sas.size())];
    Capture cap = vehicle.synthesize_foreign(frame, sig, env, tx.start_s);
    cap.true_ecu = imitator;
    out.push_back(LabeledCapture{std::move(cap), true});
  }
  return out;
}

}  // namespace sim
