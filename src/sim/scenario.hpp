// Composable attack × fault × environment scenarios over the simulated
// vehicles, scored end-to-end through the streaming detection pipeline.
//
// A Scenario names one cell of the evaluation grid the ROADMAP asks for:
// which vehicle preset transmits, which attack (if any) is injected into
// the traffic, which analog fault profile corrupts the tap's captures,
// and which electrical environment the vehicle sits in.  ScenarioRunner
// turns a cell into metrics deterministically: every random stream is
// seeded by hashing the runner seed with the scenario's identity, so a
// given (seed, scenario) pair produces bit-identical metrics no matter
// how many scenarios ran before it.  That property is what makes the
// scenario regression harness (tests/test_scenarios.cpp) a golden test
// rather than a flaky one.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/model.hpp"
#include "faults/fault.hpp"
#include "pipeline/counters.hpp"
#include "sim/attack.hpp"
#include "sim/vehicle.hpp"
#include "stats/confusion.hpp"

namespace obs {
class MetricsRegistry;
class Tracer;
}  // namespace obs

namespace sim {

/// Attack layer of a scenario.
enum class AttackKind {
  kNone,            // clean traffic (false-positive test)
  kHijack,          // trained ECU claims another cluster's SA
  kForeign,         // untrained device imitates the most-similar target
  kMasquerade,      // Sagong voltage-corruption overcurrent attack
  kImitationSweep,  // duplicate-signature sweep toward the target
};

const char* to_string(AttackKind kind);

/// One cell of the evaluation grid.
struct Scenario {
  std::string preset = "a";  // "a" | "b" (sim::vehicle_a / vehicle_b)
  AttackKind attack = AttackKind::kNone;
  faults::FaultProfile faults;  // default: clean
  analog::Environment env;
  /// Environment label used in the scenario name (and thus the stream
  /// seeds and the model cache key) — keep it in sync with `env`.
  std::string env_name = "reference";
  vprofile::DistanceMetric metric = vprofile::DistanceMetric::kMahalanobis;
  double margin = 4.0;
  double attack_prob = 0.2;  // hijack rewrite probability
  double overdrive = 0.4;    // masquerade overcurrent strength
  /// false scores with a margin-only DetectionConfig — the exact pre-gating
  /// detector.  Deliberately not part of name(): the generated stream is
  /// identical either way, so flipping the switch isolates what gating
  /// changed (nothing, on clean captures).
  bool quality_gating = true;
  std::size_t train_count = 1200;
  std::size_t test_count = 400;

  /// Canonical identity: preset/metric/attack/faults/env.  Scenarios with
  /// equal names draw identical random streams from a given runner seed.
  std::string name() const;
};

/// Everything a scenario run measures.
struct ScenarioMetrics {
  /// Confusion over confidently classified messages only (degraded and
  /// extraction-failed captures are accounted separately — a monitor
  /// escalates those on their own channel rather than guessing).
  stats::BinaryConfusion confusion;
  std::size_t extraction_failures = 0;
  std::size_t degraded = 0;
  /// Per-fault injection counts from the fault layer.
  faults::FaultStats fault_stats;
  /// Pipeline telemetry (per-verdict and per-extract-error counters).
  pipeline::CountersSnapshot pipeline_counters;

  /// Order-independent digest of every count above (not the timings);
  /// equal fingerprints <=> identical detection outcomes.
  std::uint64_t fingerprint() const;
};

/// A scenario's outcome: metrics, or a training failure diagnosis.
struct ScenarioResult {
  ScenarioMetrics metrics;
  std::string error;  // non-empty when the model could not be trained

  bool ok() const { return error.empty(); }
};

/// Vehicle preset for a scenario ("a" or "b"; throws std::invalid_argument
/// otherwise).
VehicleConfig scenario_vehicle(const Scenario& scenario);

/// The runner's FNV-1a seed derivation: hashes a base seed with a purpose
/// string ("stream/<name>", "faults/<name>", "train/<key>") so every
/// stage draws from an independent, order-independent random stream.
/// Exposed so sibling harnesses (sim/adversary.hpp) reuse the exact
/// discipline instead of inventing parallel seeding schemes.
units::Seed64 derive_stream_seed(units::Seed64 seed,
                                 const std::string& purpose);

/// Detection config a deployed monitor would run this vehicle with:
/// the scenario margin plus quality gating matched to the digitizer
/// (rails at the ADC limits, flat-run detection on).  Clean captures
/// never trip the gate, so clean-traffic verdicts are identical to a
/// margin-only config.
vprofile::DetectionConfig scenario_detection_config(
    const VehicleConfig& config, double margin);

/// Runs scenarios deterministically, caching one trained model per
/// (preset, metric, environment, train_count) so grids stay fast.  Not
/// thread-safe; use one runner per thread.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(units::Seed64 seed);
  explicit ScenarioRunner(std::uint64_t seed)
      : ScenarioRunner(units::Seed64{seed}) {}

  /// Never throws for any fault profile or attack: training failures are
  /// reported in the result, detection always yields a verdict.
  ScenarioResult run(const Scenario& scenario);

  /// Attach observability to every subsequent run(): training fits, fault
  /// activations and pipeline stages all report into these sinks.  The
  /// metrics fingerprint() covers is untouched — scenario outcomes stay
  /// bit-identical (tests/test_obs.cpp holds this against the golden
  /// matrix).  Null detaches; sinks must outlive the runner.
  void set_observability(obs::MetricsRegistry* metrics, obs::Tracer* tracer);

  /// The model a scenario's training key resolves to, trained on first use
  /// and cached like run() does (the two share one cache, so a harness
  /// that scores the model through a custom detector stack still trains
  /// exactly once per key).  Null when training failed; `error`, when
  /// non-null, receives the diagnosis.
  std::shared_ptr<const vprofile::Model> trained_model(
      const Scenario& scenario, std::string* error = nullptr);

  units::Seed64 seed() const { return seed_; }

 private:
  struct CachedModel {
    std::shared_ptr<const vprofile::Model> model;
    std::string error;
  };

  const CachedModel& model_for(const Scenario& scenario);

  units::Seed64 seed_;
  std::map<std::string, CachedModel> model_cache_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace sim
