// Vehicle presets standing in for the paper's two test trucks.
//
// Vehicle A mirrors the 2016 Peterbilt 579: five ECUs with visually
// distinct voltage profiles (Fig 4.2), captured at 20 MS/s and 16 bits.
// ECUs 1 and 4 are deliberately the most-similar pair — the paper found
// them closest under both metrics and used them for the foreign-device
// imitation test.  ECU 0 is the engine-mounted ECM with strong temperature
// coupling (Fig 4.6 shows its distance shifting drastically with
// temperature; ECU 2 also reacts strongly, the rest only subtly).
//
// Vehicle B mirrors the confidential partner vehicle: more ECUs (ten) with
// much less distinct profiles, captured at 10 MS/s and 12 bits.  Its
// dominant levels are close together relative to the edge-sample variance,
// which is what broke Euclidean-distance detection in the paper
// (accuracy 0.886) while Mahalanobis stayed at 1.0.
#pragma once

#include "sim/vehicle.hpp"

namespace sim {

/// Five-ECU Peterbilt-like vehicle, 250 kb/s J1939, 20 MS/s / 16 bit.
VehicleConfig vehicle_a();

/// Ten-ECU partner-like vehicle, 250 kb/s J1939, 10 MS/s / 12 bit.
/// `seed` controls the signature draw (profiles stay close by design).
VehicleConfig vehicle_b(std::uint64_t seed = 0xB0B);

/// Default extraction bit threshold for a vehicle: the ADC code midway
/// between the recessive level and two thirds of the nominal dominant
/// level (the paper's 38000 for 16-bit Vehicle A data sits at the same
/// fraction of full scale).
double default_bit_threshold(const VehicleConfig& config);

/// Extraction config matched to the vehicle's digitizer and bitrate.
vprofile::ExtractionConfig default_extraction(const VehicleConfig& config);

}  // namespace sim
