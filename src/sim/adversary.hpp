// Adaptive adversary co-evolution harness: searches the Sagong-style
// attack parameter space against the full detector stack and reports the
// detection frontier.
//
// The paper's evaluation (and the 30-cell golden scenario matrix) fixes
// attack parameters up front.  Sagong et al. ("Mitigating Vulnerabilities
// of Voltage-based Intrusion Detection Systems in CAN", 2019) show that a
// voltage IDS is only as strong as its weakest point in attack-parameter
// space: overcurrent shaping, voltage-corruption bursts and
// drift-exploiting slow masquerades can all be *tuned* against the
// detector.  AdversarySearch turns that observation into a benchmark: for
// each attack family it sweeps a coarse parameter grid, hill-climbs
// toward the detector's weakest cell, and scores every candidate against
// five defense arms:
//
//   plain       margin-only detector; extraction failures pass silently
//               (the naive monitor's blind spot)
//   gated       quality gating on (scenario_detection_config): degraded
//               captures and extraction failures count as detections
//   fixed-point gated verdicts on features quantized to the 12-bit
//               mirror grid (linalg/fixed_point.hpp) — does the embedded
//               profile open or close blind spots?
//   sentinel    gated + a Page–Hinkley drift sentinel over the distance
//               stream; a sentinel alarm detects the *campaign* even when
//               every individual frame stays under the margin
//   supervised  the full runtime Supervisor in lockstep mode (drift ->
//               retrain -> validate -> promote/rollback), so evasions of
//               a retraining deployment are distinguished from evasions
//               of the static model — and silent poisoning (a promotion
//               under attack with no rollback) is reported as such
//
// Determinism: the harness reuses ScenarioRunner's model cache and FNV
// seed discipline (derive_stream_seed); every candidate evaluation is a
// pure function of (runner seed, config, parameter point), transforms are
// parameter-deterministic (no RNG), and candidate results are stored by
// index — so the frontier report is bit-identical across runs and across
// worker counts (tests/test_frontier.cpp holds both).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "runtime/drift_sentinel.hpp"
#include "sim/scenario.hpp"

namespace obs {
class Counter;
class Gauge;
class MetricsRegistry;
class Tracer;
}  // namespace obs

namespace sim {

/// The searched attack families (each maps to one src/faults transform).
enum class AttackFamily {
  kOvercurrent,      // foreign frames + overcurrent shaping
  kCorruptionBurst,  // foreign frames + voltage-corruption bursts
  kDriftMasquerade,  // benign traffic walked away by a duty-cycled ramp
};

inline constexpr std::size_t kNumAttackFamilies = 3;

const char* to_string(AttackFamily family);

/// The defense arms every candidate point is scored against.
enum class DefenseArm { kPlain, kGated, kFixedPoint, kSentinel, kSupervised };

inline constexpr std::size_t kNumDefenseArms = 5;

const char* to_string(DefenseArm arm);

/// One point in a family's parameter space.  The meaning of each slot is
/// family-specific (see AdversarySearch::param_specs); unused slots are
/// pinned to zero.  Voltage-magnitude dimensions (offsets, amplitudes,
/// ramp rates) are fractions of ADC full scale so one spec covers both
/// digitizer presets.
inline constexpr std::size_t kNumAttackParams = 4;
using AttackPoint = std::array<double, kNumAttackParams>;

/// One searchable parameter dimension.
struct ParamSpec {
  const char* name = "unused";
  double lo = 0.0;
  double hi = 0.0;
  std::size_t grid = 1;  // coarse-sweep points along this dimension
};

/// Outcome of one defense arm at one attack point.
struct ArmOutcome {
  /// Detected attack frames / attack frames (stream-level alarms force
  /// this to 1: the campaign was caught even if single frames passed).
  double detection_rate = 0.0;
  /// detection_rate - evasion_floor: negative means the attack evades
  /// this arm (the frontier's "margin to detection").
  double margin = 0.0;
  std::uint64_t attack_frames = 0;
  std::uint64_t detected = 0;
  /// Sentinel / supervisor raised a stream-level alarm (drift alarm or
  /// rollback) during the run.
  bool stream_alarm = false;
  /// Supervised arm only: candidate promotions that happened *under
  /// attack*.  A promotion with no rollback is silent poisoning — the
  /// model absorbed the adversary's signature.
  std::uint64_t promotions = 0;
  std::uint64_t rollbacks = 0;
};

/// One evaluated cell: a parameter point and its per-arm outcomes.
struct FrontierCell {
  AttackFamily family = AttackFamily::kOvercurrent;
  AttackPoint params{};
  std::array<ArmOutcome, kNumDefenseArms> arms{};

  const ArmOutcome& arm(DefenseArm a) const {
    return arms[static_cast<std::size_t>(a)];
  }
  double plain_margin() const {
    return arm(DefenseArm::kPlain).margin;
  }
};

/// A family's search result: the weakest cell found and what closes it.
struct FamilyFrontier {
  AttackFamily family = AttackFamily::kOvercurrent;
  FrontierCell weakest;
  std::uint64_t evaluations = 0;  // candidate points scored
  std::uint64_t generations = 0;  // hill-climb generations run
  /// First non-plain defense (enum order) whose margin at the weakest
  /// cell is >= 0; nullopt when nothing closes the evasion.
  std::optional<DefenseArm> closing_defense;
};

/// The machine-readable frontier report.  to_json() is a pure function of
/// the contents (fixed field order, %.17g doubles, no timestamps), so two
/// same-seed runs emit byte-identical reports — the property the golden
/// frontier test pins.
struct FrontierReport {
  std::uint64_t seed = 0;
  std::vector<FamilyFrontier> families;

  /// FNV-1a digest over every field to_json() serializes.
  std::uint64_t fingerprint() const;
  std::string to_json() const;
};

/// Search configuration.  The defaults match the reference workload the
/// frontier driver (tools/vprofile_frontier.cpp) runs.
struct AdversaryConfig {
  std::string preset = "a";
  vprofile::DistanceMetric metric = vprofile::DistanceMetric::kMahalanobis;
  /// Detection margin the defender deploys with (the golden matrix's
  /// calibrated Mahalanobis operating point).
  double margin = 12.0;
  std::size_t train_count = 1200;
  /// Frames per candidate evaluation stream.
  std::size_t stream_count = 160;
  /// An arm evades when it detects less than this fraction of attack
  /// frames; margin = detection_rate - evasion_floor.
  double evasion_floor = 0.5;
  /// Drift-masquerade frames count as attacks once the cumulative shift
  /// reaches this fraction of ADC full scale (smaller shifts are inside
  /// the environmental noise floor and have not materially moved the
  /// signature yet).  0.0008 is ~52 codes on the 16-bit preset — above
  /// the per-frame noise, below the plain detector's flag point, which
  /// is exactly the band a drift-exploiting adversary aims for.
  double harm_shift_frac = 0.0008;
  /// Hill-climb refinement generations after the coarse sweep.
  std::size_t generations = 3;
  /// Page–Hinkley tuning shared by the sentinel arm and the supervised
  /// arm's supervisor.  min_samples is far below the runtime default:
  /// candidate streams are short and split across clusters, so the
  /// sentinel must be able to form a baseline from a handful of frames.
  runtime::DriftConfig drift{.delta = 0.05, .lambda = 25.0,
                             .min_samples = 8};
  /// Threads evaluating candidates; results are index-ordered, so the
  /// frontier is invariant to this.
  std::size_t num_workers = 1;
  /// Families to search (defaults to all three).
  std::vector<AttackFamily> families = {AttackFamily::kOvercurrent,
                                        AttackFamily::kCorruptionBurst,
                                        AttackFamily::kDriftMasquerade};
};

/// Runs the adversary search against one ScenarioRunner (whose seed and
/// model cache it shares).  Not thread-safe; the runner must outlive the
/// search.
class AdversarySearch {
 public:
  AdversarySearch(ScenarioRunner& runner, AdversaryConfig config);

  /// Attach observability: a `frontier_attacks_evaluated_total` counter,
  /// a `frontier_margin` gauge (milli-margin of the weakest cell so far)
  /// and one trace span per search generation.  The report is untouched —
  /// outcomes stay bit-identical with sinks attached.  Null detaches.
  void set_observability(obs::MetricsRegistry* metrics, obs::Tracer* tracer);

  /// Parameter dimensions for one family (exposed for the driver's table
  /// output and the tests).
  static std::array<ParamSpec, kNumAttackParams> param_specs(
      AttackFamily family);

  /// Runs the full search.  Throws std::runtime_error when the model for
  /// the configured preset cannot be trained.
  FrontierReport run();

 private:
  struct FamilyWorkload;

  FamilyWorkload make_workload(AttackFamily family, const Scenario& base);
  FamilyFrontier search_family(AttackFamily family,
                               const FamilyWorkload& workload);
  FrontierCell evaluate(AttackFamily family, const FamilyWorkload& workload,
                        const AttackPoint& point) const;
  ArmOutcome evaluate_supervised(AttackFamily family,
                                 const FamilyWorkload& workload,
                                 const AttackPoint& point) const;
  std::vector<FrontierCell> evaluate_all(AttackFamily family,
                                         const FamilyWorkload& workload,
                                         const std::vector<AttackPoint>& pts);

  ScenarioRunner& runner_;
  AdversaryConfig config_;
  std::shared_ptr<const vprofile::Model> model_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* evals_counter_ = nullptr;
  obs::Gauge* margin_gauge_ = nullptr;
};

}  // namespace sim
