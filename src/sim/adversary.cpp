#include "sim/adversary.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/detector.hpp"
#include "core/extractor.hpp"
#include "faults/fault.hpp"
#include "linalg/fixed_point.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"
#include "runtime/supervisor.hpp"
#include "sim/attack.hpp"
#include "sim/experiment.hpp"
#include "sim/presets.hpp"

namespace sim {
namespace {

/// FNV-1a over raw bytes (same constants as the scenario fingerprint —
/// determinism, not cryptographic strength).
std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t fnv1a_init() { return 0xcbf29ce484222325ULL; }

std::uint64_t hash_u64(std::uint64_t hash, std::uint64_t value) {
  return fnv1a(hash, &value, sizeof(value));
}

std::uint64_t hash_double(std::uint64_t hash, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return hash_u64(hash, bits);
}

/// %.17g round-trips every double exactly, so serialization is a pure
/// function of the value bits.
std::string json_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

constexpr std::size_t kPlainIdx =
    static_cast<std::size_t>(DefenseArm::kPlain);
constexpr std::size_t kGatedIdx =
    static_cast<std::size_t>(DefenseArm::kGated);
constexpr std::size_t kFixedIdx =
    static_cast<std::size_t>(DefenseArm::kFixedPoint);
constexpr std::size_t kSentinelIdx =
    static_cast<std::size_t>(DefenseArm::kSentinel);
constexpr std::size_t kSupervisedIdx =
    static_cast<std::size_t>(DefenseArm::kSupervised);

/// Cumulative ramp state for the drift-masquerade family (one campaign =
/// one state, threaded through the frame loop).
struct RampState {
  double shift = 0.0;
  std::uint64_t ticks = 0;
};

/// Applies one family's transform at `point` to one base frame.  The
/// foreign-backed families corrupt only the frames that are attacks in
/// the base stream; the drift masquerade walks *every* frame by the
/// cumulative ramp and relabels by harm (`is_attack` becomes true once
/// the shift reaches the harm threshold).  Voltage-magnitude dimensions
/// arrive as fractions of full scale and are rescaled to codes here.
/// Parameter-deterministic: no RNG.
dsp::Trace transform_frame(AttackFamily family, const AttackPoint& point,
                           const dsp::Trace& in, double max_code,
                           double harm_shift_frac, RampState& ramp,
                           bool* is_attack) {
  switch (family) {
    case AttackFamily::kOvercurrent: {
      if (!*is_attack) return in;
      faults::OvercurrentFault f;
      f.gain = point[0];
      f.dominant_fraction = point[1];
      f.offset = point[2] * max_code;
      return faults::apply_overcurrent(in, f, max_code);
    }
    case AttackFamily::kCorruptionBurst: {
      if (!*is_attack) return in;
      faults::CorruptionBurstFault f;
      f.amplitude = point[0] * max_code;
      f.period_samples = point[1];
      f.phase = point[2];
      f.duty = point[3];
      return faults::apply_corruption_burst(in, f, max_code);
    }
    case AttackFamily::kDriftMasquerade: {
      ++ramp.ticks;
      if (faults::duty_cycle_fires(ramp.ticks, point[2])) {
        const double limit = point[1] * max_code;
        ramp.shift =
            std::clamp(ramp.shift + point[0] * max_code, -limit, limit);
      }
      *is_attack = ramp.shift >= harm_shift_frac * max_code;
      return faults::apply_slow_drift(in, ramp.shift, max_code);
    }
  }
  return in;
}

/// Folds counts into rate and margin.  A stream-level alarm catches the
/// whole campaign, so it forces the rate to 1; a point with no attack
/// frames did no harm, which is a win for the defender, not an evasion.
void finalize(ArmOutcome& arm, double evasion_floor) {
  if (arm.stream_alarm) {
    arm.detection_rate = 1.0;
  } else if (arm.attack_frames == 0) {
    arm.detection_rate = 1.0;
  } else {
    arm.detection_rate = static_cast<double>(arm.detected) /
                         static_cast<double>(arm.attack_frames);
  }
  arm.margin = arm.detection_rate - evasion_floor;
}

}  // namespace

const char* to_string(AttackFamily family) {
  switch (family) {
    case AttackFamily::kOvercurrent: return "overcurrent";
    case AttackFamily::kCorruptionBurst: return "corruption-burst";
    case AttackFamily::kDriftMasquerade: return "drift-masquerade";
  }
  return "unknown";
}

const char* to_string(DefenseArm arm) {
  switch (arm) {
    case DefenseArm::kPlain: return "plain";
    case DefenseArm::kGated: return "gated";
    case DefenseArm::kFixedPoint: return "fixed-point";
    case DefenseArm::kSentinel: return "sentinel";
    case DefenseArm::kSupervised: return "supervised";
  }
  return "unknown";
}

std::uint64_t FrontierReport::fingerprint() const {
  std::uint64_t h = fnv1a_init();
  h = hash_u64(h, seed);
  h = hash_u64(h, families.size());
  for (const FamilyFrontier& f : families) {
    h = hash_u64(h, static_cast<std::uint64_t>(f.family));
    h = hash_u64(h, f.evaluations);
    h = hash_u64(h, f.generations);
    h = hash_u64(h, f.closing_defense.has_value()
                        ? static_cast<std::uint64_t>(*f.closing_defense)
                        : 0xffffffffULL);
    for (double p : f.weakest.params) h = hash_double(h, p);
    for (const ArmOutcome& a : f.weakest.arms) {
      h = hash_double(h, a.detection_rate);
      h = hash_double(h, a.margin);
      h = hash_u64(h, a.attack_frames);
      h = hash_u64(h, a.detected);
      h = hash_u64(h, a.stream_alarm ? 1 : 0);
      h = hash_u64(h, a.promotions);
      h = hash_u64(h, a.rollbacks);
    }
  }
  return h;
}

std::string FrontierReport::to_json() const {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"vprofile-frontier-v1\",\n";
  out += "  \"seed\": " + std::to_string(seed) + ",\n";
  out += "  \"families\": [";
  for (std::size_t fi = 0; fi < families.size(); ++fi) {
    const FamilyFrontier& f = families[fi];
    out += fi == 0 ? "\n" : ",\n";
    out += "    {\n";
    out += std::string("      \"family\": \"") + to_string(f.family) + "\",\n";
    out += "      \"evaluations\": " + std::to_string(f.evaluations) + ",\n";
    out += "      \"generations\": " + std::to_string(f.generations) + ",\n";
    out += "      \"closing_defense\": ";
    if (f.closing_defense.has_value()) {
      out += std::string("\"") + to_string(*f.closing_defense) + "\"";
    } else {
      out += "null";
    }
    out += ",\n";
    out += "      \"weakest\": {\n";
    out += "        \"params\": {";
    const auto specs = AdversarySearch::param_specs(f.family);
    bool first = true;
    for (std::size_t d = 0; d < kNumAttackParams; ++d) {
      if (std::strcmp(specs[d].name, "unused") == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += std::string("\"") + specs[d].name +
             "\": " + json_double(f.weakest.params[d]);
    }
    out += "},\n";
    out += "        \"arms\": [";
    for (std::size_t a = 0; a < kNumDefenseArms; ++a) {
      const ArmOutcome& arm = f.weakest.arms[a];
      out += a == 0 ? "\n" : ",\n";
      out += std::string("          {\"arm\": \"") +
             to_string(static_cast<DefenseArm>(a)) + "\"";
      out += ", \"detection_rate\": " + json_double(arm.detection_rate);
      out += ", \"margin\": " + json_double(arm.margin);
      out += ", \"attack_frames\": " + std::to_string(arm.attack_frames);
      out += ", \"detected\": " + std::to_string(arm.detected);
      out += std::string(", \"stream_alarm\": ") +
             (arm.stream_alarm ? "true" : "false");
      out += ", \"promotions\": " + std::to_string(arm.promotions);
      out += ", \"rollbacks\": " + std::to_string(arm.rollbacks);
      out += "}";
    }
    out += "\n        ]\n";
    out += "      }\n";
    out += "    }";
  }
  out += "\n  ]\n}\n";
  return out;
}

/// One family's fixed evaluation substrate, synthesized once: the base
/// labeled stream plus the digitizer constants every candidate reuses.
struct AdversarySearch::FamilyWorkload {
  VehicleConfig config;
  vprofile::ExtractionConfig extraction;
  double max_code = 0.0;
  std::vector<LabeledCapture> stream;
  /// (cluster, distance) of every confidently classified frame of the
  /// *uncorrupted* stream — the benign history a deployed monitor has
  /// accumulated before the campaign starts.  Replayed into each
  /// candidate's drift sentinel so Page–Hinkley has a pre-attack
  /// baseline; without it, a fast ramp is simply the stream's normal and
  /// no changepoint exists to detect.
  std::vector<std::pair<std::size_t, double>> benign_observations;
};

AdversarySearch::AdversarySearch(ScenarioRunner& runner,
                                 AdversaryConfig config)
    : runner_(runner), config_(std::move(config)) {}

void AdversarySearch::set_observability(obs::MetricsRegistry* metrics,
                                        obs::Tracer* tracer) {
  metrics_ = metrics;
  tracer_ = tracer;
}

std::array<ParamSpec, kNumAttackParams> AdversarySearch::param_specs(
    AttackFamily family) {
  switch (family) {
    case AttackFamily::kOvercurrent:
      return {{{"gain", 0.0, 1.5, 4},
               {"dominant_fraction", 0.5, 0.95, 3},
               {"offset_frac", -0.02, 0.02, 3},
               {"unused", 0.0, 0.0, 1}}};
    case AttackFamily::kCorruptionBurst:
      return {{{"amplitude_frac", 0.0, 0.6, 4},
               {"period_samples", 8.0, 512.0, 3},
               {"phase", 0.0, 0.75, 2},
               {"duty", 0.05, 1.0, 3}}};
    case AttackFamily::kDriftMasquerade:
      // The searchable shift band is deliberately tight around the noise
      // floor: the probe that sized it found the Mahalanobis detector
      // flags a DC shift of ~0.2% of full scale, so the whole
      // cat-and-mouse game happens between harm_shift_frac and there.
      return {{{"ramp_rate_frac", 0.00005, 0.0005, 3},
               {"max_shift_frac", 0.0005, 0.003, 6},
               {"duty", 0.1, 1.0, 3},
               {"unused", 0.0, 0.0, 1}}};
  }
  return {};
}

FrontierReport AdversarySearch::run() {
  Scenario base;
  base.preset = config_.preset;
  base.metric = config_.metric;
  base.margin = config_.margin;
  base.train_count = config_.train_count;

  std::string error;
  model_ = runner_.trained_model(base, &error);
  if (!model_) {
    throw std::runtime_error("adversary: model training failed: " + error);
  }

  if (metrics_ != nullptr) {
    evals_counter_ = metrics_->counter("frontier_attacks_evaluated_total");
    // Milli-margin of the weakest cell found so far: a signed level, not
    // a count and not in any physical unit (precedent:
    // runtime_health_state).
    // vprofile-lint: allow(metric-name)
    margin_gauge_ = metrics_->gauge("frontier_margin");
  } else {
    evals_counter_ = nullptr;
    margin_gauge_ = nullptr;
  }

  FrontierReport report;
  report.seed = runner_.seed().value();
  for (AttackFamily family : config_.families) {
    const FamilyWorkload workload = make_workload(family, base);
    report.families.push_back(search_family(family, workload));
  }
  return report;
}

AdversarySearch::FamilyWorkload AdversarySearch::make_workload(
    AttackFamily family, const Scenario& base) {
  FamilyWorkload w;
  w.config = scenario_vehicle(base);
  w.extraction = default_extraction(w.config);
  w.max_code = static_cast<double>(w.config.adc.max_code());

  // Same FNV discipline as ScenarioRunner's streams: the vehicle draw is
  // a pure function of (runner seed, family), independent of evaluation
  // order and of whatever scenarios ran before.
  const std::string purpose =
      std::string("stream/adversary/") + to_string(family);
  Vehicle vehicle(w.config, derive_stream_seed(runner_.seed(), purpose));

  if (family == AttackFamily::kDriftMasquerade) {
    // Benign traffic: the masquerade's harm comes from the ramp itself,
    // so labels are assigned per candidate (shift >= harm_shift_frac).
    w.stream = make_normal_stream(vehicle, config_.stream_count, base.env);
  } else {
    // Foreign-device traffic: the attack frames are genuinely malicious
    // before any shaping, so a zero-amplitude transform cannot fake an
    // evasion — it just reproduces the baseline foreign detection rate.
    const auto [imitator, target] = Experiment::most_similar_pair(*model_);
    w.stream = make_foreign_stream(vehicle, imitator, target,
                                   config_.stream_count, base.env);
  }

  const vprofile::DetectionConfig gated_cfg =
      scenario_detection_config(w.config, config_.margin);
  for (const LabeledCapture& lc : w.stream) {
    const auto es = vprofile::extract_edge_set(lc.capture.codes, w.extraction);
    if (!es.has_value()) continue;
    const vprofile::Detection d = vprofile::detect(*model_, *es, gated_cfg);
    if (!d.is_degraded() && d.predicted_cluster.has_value()) {
      w.benign_observations.emplace_back(*d.predicted_cluster,
                                         d.min_distance);
    }
  }
  return w;
}

FrontierCell AdversarySearch::evaluate(AttackFamily family,
                                       const FamilyWorkload& workload,
                                       const AttackPoint& point) const {
  FrontierCell cell;
  cell.family = family;
  cell.params = point;

  vprofile::DetectionConfig plain_cfg;
  plain_cfg.margin = config_.margin;
  const vprofile::DetectionConfig gated_cfg =
      scenario_detection_config(workload.config, config_.margin);
  const double step = linalg::fixed::choose_feature_step(workload.max_code);

  runtime::DriftSentinel sentinel(model_->clusters().size(), config_.drift);
  // Warm the sentinel on the pre-campaign benign history; only alarms
  // raised *during* the campaign count (a cluster already latched by the
  // baseline replay could never alarm again, so count latches, not
  // observe() returns).
  for (const auto& [cluster, distance] : workload.benign_observations) {
    sentinel.observe(cluster, distance);
  }
  const std::uint64_t baseline_alarms = sentinel.alarms_total();

  auto tally = [](ArmOutcome& arm, bool detected) {
    ++arm.attack_frames;
    if (detected) ++arm.detected;
  };

  RampState ramp;
  for (const LabeledCapture& lc : workload.stream) {
    bool is_attack = lc.is_attack;
    const dsp::Trace trace =
        transform_frame(family, point, lc.capture.codes, workload.max_code,
                        config_.harm_shift_frac, ramp, &is_attack);

    const std::optional<vprofile::EdgeSet> es =
        vprofile::extract_edge_set(trace, workload.extraction);

    bool plain_det = false;  // extraction failure passes silently
    bool gated_det = true;   // extraction failure escalates
    bool fixed_det = true;
    if (es.has_value()) {
      plain_det = vprofile::detect(*model_, *es, plain_cfg).is_anomaly();

      const vprofile::Detection gated =
          vprofile::detect(*model_, *es, gated_cfg);
      gated_det = gated.is_anomaly();

      vprofile::EdgeSet quantized = *es;
      for (double& x : quantized.samples) {
        x = static_cast<double>(linalg::fixed::quantize_feature(x, step)) *
            step;
      }
      fixed_det = vprofile::detect(*model_, quantized, gated_cfg).is_anomaly();

      // The sentinel watches the distance stream of every confidently
      // classified frame — benign and attack alike; that is what lets it
      // see a campaign whose individual frames all pass.
      if (!gated.is_degraded() && gated.predicted_cluster.has_value()) {
        sentinel.observe(*gated.predicted_cluster, gated.min_distance);
      }
    }

    if (is_attack) {
      tally(cell.arms[kPlainIdx], plain_det);
      tally(cell.arms[kGatedIdx], gated_det);
      tally(cell.arms[kFixedIdx], fixed_det);
      tally(cell.arms[kSentinelIdx], gated_det);
    }
  }

  cell.arms[kSentinelIdx].stream_alarm =
      sentinel.alarms_total() > baseline_alarms;
  finalize(cell.arms[kPlainIdx], config_.evasion_floor);
  finalize(cell.arms[kGatedIdx], config_.evasion_floor);
  finalize(cell.arms[kFixedIdx], config_.evasion_floor);
  finalize(cell.arms[kSentinelIdx], config_.evasion_floor);
  // The supervised arm is expensive (a full Supervisor run); it is filled
  // in only at each family's weakest cell by evaluate_supervised().
  return cell;
}

ArmOutcome AdversarySearch::evaluate_supervised(
    AttackFamily family, const FamilyWorkload& workload,
    const AttackPoint& point) const {
  // The deployment sees the benign history first (same warm-up the
  // sentinel arm gets), then the campaign: the supervisor's own drift
  // sentinel needs a pre-attack baseline to have a changepoint to find.
  std::vector<dsp::Trace> traces;
  std::vector<char> labels;
  traces.reserve(2 * workload.stream.size());
  labels.reserve(2 * workload.stream.size());
  for (const LabeledCapture& lc : workload.stream) {
    traces.push_back(lc.capture.codes);
    labels.push_back(0);
  }
  RampState ramp;
  for (const LabeledCapture& lc : workload.stream) {
    bool is_attack = lc.is_attack;
    traces.push_back(transform_frame(family, point, lc.capture.codes,
                                     workload.max_code, config_.harm_shift_frac,
                                     ramp, &is_attack));
    labels.push_back(is_attack ? 1 : 0);
  }

  runtime::SupervisorConfig sc;
  sc.pipeline.num_workers = 1;
  sc.pipeline.queue_capacity = 256;
  sc.pipeline.block_when_full = true;
  sc.pipeline.detection =
      scenario_detection_config(workload.config, config_.margin);
  sc.drift = config_.drift;
  sc.lockstep = true;  // verdicts a pure function of the input stream
  sc.online_update = true;
  sc.retrain_batch = 48;
  sc.validation_window = 16;

  std::vector<char> detected(traces.size(), 0);
  runtime::Supervisor supervisor(
      vprofile::Model(*model_), sc,
      [&detected](const pipeline::FrameResult& r) {
        if (r.seq < detected.size()) {
          detected[r.seq] = (!r.ok() || r.detection->is_anomaly()) ? 1 : 0;
        }
      });
  for (dsp::Trace& t : traces) supervisor.submit(std::move(t));
  supervisor.finish();

  const runtime::SupervisorStats stats = supervisor.stats();
  ArmOutcome out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == 0) continue;
    ++out.attack_frames;
    if (detected[i] != 0) ++out.detected;
  }
  out.promotions = stats.promotions;
  out.rollbacks = stats.rollbacks;
  // A drift alarm or a rollback is the deployment noticing the campaign;
  // a promotion without either is silent poisoning and must NOT count as
  // a detection — it is reported so the frontier table can call it out.
  out.stream_alarm = stats.drift_alarms > 0 || stats.rollbacks > 0;
  finalize(out, config_.evasion_floor);
  return out;
}

std::vector<FrontierCell> AdversarySearch::evaluate_all(
    AttackFamily family, const FamilyWorkload& workload,
    const std::vector<AttackPoint>& pts) {
  std::vector<FrontierCell> cells(pts.size());
  const std::size_t workers = std::clamp<std::size_t>(
      config_.num_workers, 1, pts.empty() ? 1 : pts.size());
  // Worker w owns indices congruent to w: the result vector's content is
  // a pure function of `pts`, never of thread scheduling.
  auto work = [&](std::size_t w) {
    for (std::size_t i = w; i < pts.size(); i += workers) {
      cells[i] = evaluate(family, workload, pts[i]);
      if (evals_counter_ != nullptr) evals_counter_->add();
    }
  };
  if (workers == 1) {
    work(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) threads.emplace_back(work, w);
    work(0);
    for (std::thread& t : threads) t.join();
  }
  return cells;
}

FamilyFrontier AdversarySearch::search_family(AttackFamily family,
                                              const FamilyWorkload& workload) {
  FamilyFrontier frontier;
  frontier.family = family;

  const std::array<ParamSpec, kNumAttackParams> specs = param_specs(family);

  // Coarse sweep: the Cartesian product of every dimension's grid.
  std::vector<AttackPoint> grid;
  std::array<std::size_t, kNumAttackParams> odo{};
  while (true) {
    AttackPoint q{};
    for (std::size_t d = 0; d < kNumAttackParams; ++d) {
      const ParamSpec& s = specs[d];
      q[d] = s.grid > 1 ? s.lo + (s.hi - s.lo) * static_cast<double>(odo[d]) /
                                     static_cast<double>(s.grid - 1)
                        : s.lo;
    }
    grid.push_back(q);
    std::size_t d = 0;
    for (; d < kNumAttackParams; ++d) {
      if (++odo[d] < specs[d].grid) break;
      odo[d] = 0;
    }
    if (d == kNumAttackParams) break;
  }

  std::vector<FrontierCell> cells = evaluate_all(family, workload, grid);
  frontier.evaluations += cells.size();
  std::size_t best = 0;
  for (std::size_t i = 1; i < cells.size(); ++i) {
    if (cells[i].plain_margin() < cells[best].plain_margin()) best = i;
  }
  FrontierCell weakest = cells[best];

  // Coordinate-descent hill-climb toward the detector's weakest point:
  // probe +/- step on every searchable dimension, move to any strict
  // improvement (first minimum in candidate order — deterministic), halve
  // the step each generation.
  std::array<double, kNumAttackParams> step{};
  for (std::size_t d = 0; d < kNumAttackParams; ++d) {
    step[d] = specs[d].grid > 1 ? (specs[d].hi - specs[d].lo) /
                                      static_cast<double>(specs[d].grid - 1)
                                : 0.0;
  }
  for (std::size_t gen = 0; gen < config_.generations; ++gen) {
    obs::TraceSpan span(tracer_, "frontier.generation");
    std::vector<AttackPoint> candidates;
    for (std::size_t d = 0; d < kNumAttackParams; ++d) {
      if (step[d] <= 0.0) continue;
      step[d] *= 0.5;
      for (double sign : {-1.0, 1.0}) {
        AttackPoint q = weakest.params;
        q[d] = std::clamp(q[d] + sign * step[d], specs[d].lo, specs[d].hi);
        candidates.push_back(q);
      }
    }
    if (candidates.empty()) break;
    const std::vector<FrontierCell> probes =
        evaluate_all(family, workload, candidates);
    frontier.evaluations += probes.size();
    ++frontier.generations;
    for (const FrontierCell& probe : probes) {
      if (probe.plain_margin() < weakest.plain_margin()) weakest = probe;
    }
    if (margin_gauge_ != nullptr) {
      margin_gauge_->set(static_cast<std::int64_t>(
          std::llround(weakest.plain_margin() * 1000.0)));
    }
  }

  // The full supervised deployment only runs at the frontier cell — it is
  // orders of magnitude more expensive than the other arms.
  weakest.arms[kSupervisedIdx] =
      evaluate_supervised(family, workload, weakest.params);

  frontier.weakest = weakest;
  for (DefenseArm arm : {DefenseArm::kGated, DefenseArm::kFixedPoint,
                         DefenseArm::kSentinel, DefenseArm::kSupervised}) {
    if (frontier.weakest.arm(arm).margin >= 0.0) {
      frontier.closing_defense = arm;
      break;
    }
  }
  return frontier;
}

}  // namespace sim
