#include "sim/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/extractor.hpp"
#include "dsp/resample.hpp"
#include "sim/presets.hpp"

namespace sim {

stats::BinaryConfusion score_at_margin(
    const std::vector<ScoredMessage>& messages, double margin) {
  stats::BinaryConfusion cm;
  for (const ScoredMessage& m : messages) {
    const bool flagged = m.hard_anomaly || m.excess > margin;
    cm.add(m.is_attack, flagged);
  }
  return cm;
}

double select_margin(const std::vector<ScoredMessage>& messages,
                     MarginObjective objective) {
  // Candidate margins: 0 plus every distinct positive excess (flipping one
  // message's verdict per step).  Evaluate just above each excess so the
  // message with that excess becomes "normal".
  std::vector<double> candidates{0.0};
  for (const ScoredMessage& m : messages) {
    if (!m.hard_anomaly && m.excess > 0.0) candidates.push_back(m.excess);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  double best_margin = 0.0;
  double best_score = -1.0;
  for (double c : candidates) {
    const double margin = std::nextafter(
        c, std::numeric_limits<double>::infinity());
    const stats::BinaryConfusion cm = score_at_margin(messages, margin);
    const double score = (objective == MarginObjective::kAccuracy)
                             ? cm.accuracy()
                             : cm.f_score();
    if (score >= best_score) {  // >= prefers the larger margin on ties
      best_score = score;
      best_margin = margin;
    }
  }
  return best_margin;
}

Capture apply_front_end(const Capture& capture, const FrontEnd& front_end,
                        int native_bits) {
  Capture out = capture;
  if (front_end.downsample_factor > 1) {
    out.codes = dsp::downsample(out.codes, front_end.downsample_factor);
  }
  if (front_end.resolution_bits != 0 &&
      front_end.resolution_bits != native_bits) {
    out.codes =
        dsp::requantize_codes(out.codes, native_bits, front_end.resolution_bits);
  }
  return out;
}

vprofile::ExtractionConfig front_end_extraction(const VehicleConfig& config,
                                                const FrontEnd& front_end) {
  const units::SampleRateHz rate{
      config.adc.sample_rate().value() /
      static_cast<double>(
          std::max<std::size_t>(1, front_end.downsample_factor))};
  return vprofile::make_extraction_config(rate, config.bitrate,
                                          default_bit_threshold(config));
}

Experiment::Experiment(VehicleConfig config, units::Seed64 seed)
    : vehicle_(std::move(config), seed) {}

namespace {

/// Extracts edge sets from captures through the front end; drops failures.
std::vector<vprofile::EdgeSet> extract_captures(
    const std::vector<Capture>& captures, const FrontEnd& front_end,
    int native_bits, const vprofile::ExtractionConfig& extraction,
    std::size_t* failures) {
  std::vector<vprofile::EdgeSet> out;
  out.reserve(captures.size());
  std::size_t failed = 0;
  for (const Capture& cap : captures) {
    const Capture transformed = apply_front_end(cap, front_end, native_bits);
    auto edge_set = vprofile::extract_edge_set(transformed.codes, extraction);
    if (edge_set) {
      out.push_back(std::move(*edge_set));
    } else {
      ++failed;
    }
  }
  if (failures != nullptr) *failures += failed;
  return out;
}

}  // namespace

vprofile::TrainOutcome Experiment::train(
    const ExperimentParams& params, std::optional<std::size_t> exclude_ecu) {
  const int native_bits = vehicle_.config().adc.resolution_bits();
  const vprofile::ExtractionConfig extraction =
      front_end_extraction(vehicle_.config(), params.front_end);

  std::vector<Capture> captures =
      vehicle_.capture(params.train_count, params.env);
  if (exclude_ecu) {
    std::erase_if(captures, [&](const Capture& c) {
      return c.true_ecu == *exclude_ecu;
    });
  }
  std::vector<vprofile::EdgeSet> edge_sets = extract_captures(
      captures, params.front_end, native_bits, extraction, nullptr);

  vprofile::SaDatabase db = vehicle_.database();
  if (exclude_ecu) {
    const std::string& name = vehicle_.config().ecus[*exclude_ecu].name;
    std::erase_if(db, [&](const auto& kv) { return kv.second == name; });
  }

  vprofile::TrainingConfig cfg;
  cfg.metric = params.metric;
  cfg.extraction = extraction;
  cfg.ridge = params.ridge;
  return vprofile::train_with_database(edge_sets, db, cfg);
}

std::vector<ScoredMessage> Experiment::score_stream(
    const vprofile::Model& model, const std::vector<LabeledCapture>& stream,
    const ExperimentParams& params, std::size_t* extraction_failures) {
  const int native_bits = vehicle_.config().adc.resolution_bits();
  std::vector<ScoredMessage> scored;
  scored.reserve(stream.size());
  for (const LabeledCapture& lc : stream) {
    const Capture transformed =
        apply_front_end(lc.capture, params.front_end, native_bits);
    auto edge_set =
        vprofile::extract_edge_set(transformed.codes, model.extraction());
    if (!edge_set) {
      if (extraction_failures != nullptr) ++(*extraction_failures);
      continue;
    }
    ScoredMessage sm;
    sm.is_attack = lc.is_attack;

    const auto expected = model.cluster_of(edge_set->sa);
    if (!expected) {
      sm.hard_anomaly = true;
      sm.excess = std::numeric_limits<double>::infinity();
    } else {
      const auto [predicted, dist] = model.nearest_cluster(edge_set->samples);
      if (predicted != *expected) {
        sm.hard_anomaly = true;
        sm.excess = std::numeric_limits<double>::infinity();
      } else {
        sm.excess = dist - model.clusters()[predicted].max_distance;
      }
    }
    scored.push_back(sm);
  }
  return scored;
}

ExperimentResult Experiment::run_labeled(
    const ExperimentParams& params, std::optional<std::size_t> exclude_ecu,
    const std::function<std::vector<LabeledCapture>()>& make_stream,
    MarginObjective objective) {
  ExperimentResult result;
  vprofile::TrainOutcome trained = train(params, exclude_ecu);
  if (!trained.ok()) {
    result.error = trained.error;
    return result;
  }

  const std::vector<LabeledCapture> stream = make_stream();
  const std::vector<ScoredMessage> scored = score_stream(
      *trained.model, stream, params, &result.extraction_failures);

  result.margin = params.fixed_margin
                      ? *params.fixed_margin
                      : select_margin(scored, objective);
  result.confusion = score_at_margin(scored, result.margin);
  return result;
}

ExperimentResult Experiment::false_positive_test(
    const ExperimentParams& params) {
  return run_labeled(
      params, std::nullopt,
      [&] {
        return make_normal_stream(vehicle_, params.test_count, params.env);
      },
      MarginObjective::kAccuracy);
}

ExperimentResult Experiment::hijack_test(const ExperimentParams& params) {
  return run_labeled(
      params, std::nullopt,
      [&] {
        return make_hijack_stream(vehicle_, params.test_count,
                                  params.hijack_prob, params.env);
      },
      MarginObjective::kFScore);
}

ExperimentResult Experiment::foreign_test(
    const ExperimentParams& params,
    std::optional<std::pair<std::size_t, std::size_t>> pair) {
  // The imitated pair is chosen from a full model (all ECUs trained), then
  // the imitator is removed and training repeats — matching the paper's
  // "remove the former's messages from the training set".
  std::pair<std::size_t, std::size_t> chosen;
  if (pair) {
    chosen = *pair;
  } else {
    vprofile::TrainOutcome full = train(params);
    if (!full.ok()) {
      ExperimentResult result;
      result.error = full.error;
      return result;
    }
    chosen = most_similar_pair(*full.model);
  }
  const auto [imitator, target] = chosen;
  return run_labeled(
      params, imitator,
      [&, imitator = imitator, target = target] {
        return make_foreign_stream(vehicle_, imitator, target,
                                   params.test_count, params.env);
      },
      MarginObjective::kFScore);
}

std::pair<std::size_t, std::size_t> Experiment::most_similar_pair(
    const vprofile::Model& model) {
  const auto& clusters = model.clusters();
  if (clusters.size() < 2) {
    throw std::invalid_argument("most_similar_pair: need >= 2 clusters");
  }
  std::pair<std::size_t, std::size_t> best{0, 1};
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    for (std::size_t j = 0; j < clusters.size(); ++j) {
      if (i == j) continue;
      // Directed distance: cluster i's mean measured against cluster j.
      const double d = model.distance(j, clusters[i].mean);
      if (d < best_dist) {
        best_dist = d;
        best = {i, j};
      }
    }
  }
  return best;
}

}  // namespace sim
