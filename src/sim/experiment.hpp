// Experiment harness reproducing the paper's evaluation protocol
// (Section 4): train on clean traffic, build a test stream (false
// positive / hijack / foreign), extract edge sets, and score with the
// margin selected the way the paper selects it — maximize accuracy for the
// false-positive test and F-score for the imitation tests, never
// considering negative margins.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/trainer.hpp"
#include "sim/attack.hpp"
#include "sim/vehicle.hpp"
#include "stats/confusion.hpp"

namespace sim {

/// Software front-end transform applied to captures before extraction,
/// used for the sampling-rate / resolution sweeps (Section 4.3).
struct FrontEnd {
  std::size_t downsample_factor = 1;
  /// Target resolution; 0 keeps the native resolution.
  int resolution_bits = 0;
};

/// Everything a single experiment needs.
struct ExperimentParams {
  vprofile::DistanceMetric metric = vprofile::DistanceMetric::kMahalanobis;
  std::size_t train_count = 4000;
  std::size_t test_count = 20000;
  double hijack_prob = 0.2;
  analog::Environment env;
  FrontEnd front_end;
  /// Fixed detection margin; unset selects the best margin per the paper.
  std::optional<double> fixed_margin;
  /// Covariance ridge fallback (0 = fail hard on singularity, as the
  /// paper's tooling did).
  double ridge = 0.0;
};

/// Scored experiment output.
struct ExperimentResult {
  stats::BinaryConfusion confusion;
  double margin = 0.0;
  std::size_t extraction_failures = 0;
  std::string error;  // non-empty when training failed (e.g. singular cov)

  bool ok() const { return error.empty(); }
};

/// Margin-independent scoring record for one test message: either the
/// anomaly verdict is fixed (unknown SA / cluster mismatch), or it
/// depends on whether `excess` exceeds the margin.
struct ScoredMessage {
  bool is_attack = false;
  bool hard_anomaly = false;
  /// min_distance - predicted cluster's max training distance; the message
  /// is flagged iff hard_anomaly or excess > margin.
  double excess = 0.0;
};

/// What the margin sweep optimizes.
enum class MarginObjective { kAccuracy, kFScore };

/// Confusion matrix of `messages` at a given margin.
stats::BinaryConfusion score_at_margin(const std::vector<ScoredMessage>& messages,
                                       double margin);

/// Best non-negative margin under the objective (ties prefer the larger
/// margin, which the paper leans toward when it "increases the margin to
/// remove all false positives").
double select_margin(const std::vector<ScoredMessage>& messages,
                     MarginObjective objective);

/// Applies the software front end to one capture (decimation + LSB drop).
Capture apply_front_end(const Capture& capture, const FrontEnd& front_end,
                        int native_bits);

/// Extraction config for a vehicle seen through a front end.
vprofile::ExtractionConfig front_end_extraction(const VehicleConfig& config,
                                                const FrontEnd& front_end);

/// Runs the harness against one vehicle.
class Experiment {
 public:
  /// `seed` drives traffic, noise and attack randomness; two experiments
  /// with equal seeds and params are identical.
  Experiment(VehicleConfig config, units::Seed64 seed);
  Experiment(VehicleConfig config, std::uint64_t seed)
      : Experiment(std::move(config), units::Seed64{seed}) {}

  /// Trains a model on clean traffic.  `exclude_ecu` removes one ECU from
  /// the training set and the SA database (foreign-device protocol).
  vprofile::TrainOutcome train(const ExperimentParams& params,
                               std::optional<std::size_t> exclude_ecu = {});

  /// The paper's three tests.  Each trains its own model and returns the
  /// scored confusion matrix.
  ExperimentResult false_positive_test(const ExperimentParams& params);
  ExperimentResult hijack_test(const ExperimentParams& params);
  /// Foreign test: `pair` overrides the imitator/target choice; by default
  /// the most-similar pair under the params' metric imitate each other
  /// (imitator = first of the pair).
  ExperimentResult foreign_test(
      const ExperimentParams& params,
      std::optional<std::pair<std::size_t, std::size_t>> pair = {});

  /// Scores a labelled stream against a model, for custom scenarios
  /// (environment sweeps, online-update studies).
  std::vector<ScoredMessage> score_stream(
      const vprofile::Model& model, const std::vector<LabeledCapture>& stream,
      const ExperimentParams& params, std::size_t* extraction_failures);

  /// Most-similar ECU pair measured between trained cluster means under
  /// the model's metric (symmetrized as the smaller directed distance).
  static std::pair<std::size_t, std::size_t> most_similar_pair(
      const vprofile::Model& model);

  Vehicle& vehicle() { return vehicle_; }

 private:
  ExperimentResult run_labeled(
      const ExperimentParams& params,
      std::optional<std::size_t> exclude_ecu,
      const std::function<std::vector<LabeledCapture>()>& make_stream,
      MarginObjective objective);

  Vehicle vehicle_;
};

}  // namespace sim
