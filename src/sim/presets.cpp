#include "sim/presets.hpp"

#include <algorithm>
#include <cmath>

namespace sim {
namespace {

using analog::EcuSignature;
using canbus::J1939Id;
using canbus::PeriodicMessage;

PeriodicMessage msg(std::uint8_t priority, std::uint32_t pgn, std::uint8_t sa,
                    double period_s, std::size_t node) {
  PeriodicMessage m;
  m.id = J1939Id{priority, pgn, sa};
  m.period_s = period_s;
  m.jitter_s = period_s * 0.02;
  m.node = node;
  m.payload_len = 8;
  return m;
}

}  // namespace

VehicleConfig vehicle_a() {
  VehicleConfig cfg;
  cfg.name = "Vehicle A";
  cfg.bitrate = units::BitRateBps{250.0e3};
  cfg.adc = dsp::AdcModel(units::SampleRateHz{20.0e6}, 16);

  // ECU 0: engine control module, mounted on the engine block — full
  // temperature coupling and the strongest level drift (Fig 4.6).
  EcuSignature ecm;
  ecm.dominant = units::Volts{2.10};
  ecm.recessive = units::Volts{0.005};
  ecm.drive = {2.30e6, 0.60};
  ecm.release = {1.15e6, 0.82};
  ecm.noise_sigma = units::Volts{0.003};
  ecm.dominant_temp_coeff_v_per_c = -0.00015;
  ecm.freq_temp_coeff_per_c = -0.0004;
  ecm.temperature_coupling = 1.0;
  ecm.dominant_vbat_coeff = 0.014;

  // ECU 1: transmission controller.  Paired with ECU 4 as the most-similar
  // profiles: identical edge timing, slightly different damping
  // (overshoot) and dominant level.
  EcuSignature trans;
  trans.dominant = units::Volts{1.920};
  trans.recessive = units::Volts{0.000};
  trans.drive = {1.88e6, 0.76};
  trans.release = {0.95e6, 0.88};
  trans.noise_sigma = units::Volts{0.0028};
  trans.dominant_temp_coeff_v_per_c = -0.00010;
  trans.freq_temp_coeff_per_c = -0.00013;
  trans.temperature_coupling = 0.25;
  trans.dominant_vbat_coeff = 0.011;

  // ECU 2: brake controller, engine-bay mounted — strong temperature
  // response (the second "drastic" trace in Fig 4.6).
  EcuSignature brake;
  brake.dominant = units::Volts{2.28};
  brake.recessive = units::Volts{0.012};
  brake.drive = {2.90e6, 0.52};
  brake.release = {1.40e6, 0.78};
  brake.noise_sigma = units::Volts{0.0032};
  brake.dominant_temp_coeff_v_per_c = -0.00013;
  brake.freq_temp_coeff_per_c = -0.00033;
  brake.temperature_coupling = 0.9;
  brake.dominant_vbat_coeff = 0.016;

  // ECU 3: body controller, cabin mounted.
  EcuSignature body;
  body.dominant = units::Volts{1.78};
  body.recessive = units::Volts{-0.004};
  body.drive = {1.50e6, 0.82};
  body.release = {0.85e6, 0.90};
  body.noise_sigma = units::Volts{0.0026};
  body.dominant_temp_coeff_v_per_c = -0.00010;
  body.freq_temp_coeff_per_c = -0.00013;
  body.temperature_coupling = 0.30;
  body.dominant_vbat_coeff = 0.010;

  // ECU 4: instrument cluster — ECU 1's near twin.
  EcuSignature cluster;
  cluster.dominant = units::Volts{1.945};
  cluster.recessive = units::Volts{0.002};
  cluster.drive = {1.88e6, 0.70};
  cluster.release = {0.95e6, 0.84};
  cluster.noise_sigma = units::Volts{0.0028};
  cluster.dominant_temp_coeff_v_per_c = -0.00010;
  cluster.freq_temp_coeff_per_c = -0.00013;
  cluster.temperature_coupling = 0.20;
  cluster.dominant_vbat_coeff = 0.012;

  // Per-ECU oscillator skews (ppm): distinct, within crystal tolerance.
  cfg.ecus = {
      {"ECU 0", ecm, {msg(3, 0x000, 0x00, 0.020, 0),
                      msg(6, 0xFEEE, 0x00, 0.250, 0)}, 34.0},
      {"ECU 1", trans, {msg(3, 0xF005, 0x03, 0.050, 1),
                        msg(6, 0xFEC1, 0x05, 0.200, 1)}, -51.0},
      {"ECU 2", brake, {msg(2, 0xF001, 0x0B, 0.050, 2)}, 12.0},
      {"ECU 3", body, {msg(6, 0xFE70, 0x21, 0.150, 3),
                       msg(6, 0xFED0, 0x31, 0.400, 3)}, -8.0},
      {"ECU 4", cluster, {msg(6, 0xFEF1, 0x17, 0.100, 4)}, 72.0},
  };
  return cfg;
}

VehicleConfig vehicle_b(std::uint64_t seed) {
  VehicleConfig cfg;
  cfg.name = "Vehicle B";
  cfg.bitrate = units::BitRateBps{250.0e3};
  cfg.adc = dsp::AdcModel(units::SampleRateHz{10.0e6}, 12);

  stats::Rng rng(seed);

  // Ten ECUs with deliberately close profiles: dominant levels ~13 mV
  // apart and overlapping edge dynamics.  Small per-seed jitter keeps the
  // spacing irregular without letting profiles collide.
  static constexpr std::uint8_t kSas[10] = {0x00, 0x03, 0x0B, 0x10, 0x17,
                                            0x21, 0x25, 0x31, 0x42, 0x55};
  static constexpr std::uint32_t kPgns[10] = {
      0x000, 0xF005, 0xF001, 0xFE40, 0xFEF1,
      0xFE70, 0xFEE5, 0xFED0, 0xFEB0, 0xFEA0};

  for (int i = 0; i < 10; ++i) {
    EcuSignature s;
    s.dominant = units::Volts{1.78 + 0.068 * i + rng.uniform(-0.002, 0.002)};
    s.recessive = units::Volts{rng.uniform(-0.004, 0.004)};
    const double freq = 1.72e6 * (1.0 + 0.012 * i) *
                        (1.0 + rng.uniform(-0.006, 0.006));
    s.drive = {freq, std::clamp(0.64 + 0.018 * i +
                                    rng.uniform(-0.008, 0.008),
                                0.4, 0.95)};
    s.release = {freq * 0.52, std::clamp(0.80 + 0.008 * i, 0.5, 0.95)};
    s.noise_sigma = units::Volts{0.004 * (1.0 + rng.uniform(-0.1, 0.1))};
    s.edge_jitter = units::Seconds{4.0e-9};
    s.dominant_temp_coeff_v_per_c = -0.00012 * (1.0 + rng.uniform(-0.3, 0.3));
    s.freq_temp_coeff_per_c = -0.0002;
    s.temperature_coupling = rng.uniform(0.2, 0.9);
    s.dominant_vbat_coeff = 0.012 * (1.0 + rng.uniform(-0.3, 0.3));

    EcuSpec ecu;
    ecu.name = "ECU " + std::to_string(i);
    ecu.signature = s;
    ecu.clock_skew_ppm = rng.uniform(-80.0, 80.0);
    const double period = 0.040 + 0.030 * i;
    ecu.messages = {msg(static_cast<std::uint8_t>(2 + (i % 5)), kPgns[i],
                        kSas[i], period, static_cast<std::size_t>(i))};
    cfg.ecus.push_back(std::move(ecu));
  }
  return cfg;
}

double default_bit_threshold(const VehicleConfig& config) {
  double mean_dom = 0.0;
  for (const auto& ecu : config.ecus) {
    mean_dom += ecu.signature.dominant.value();
  }
  mean_dom /= static_cast<double>(config.ecus.size());
  // Same full-scale fraction as the paper's 38000-of-65535 for a ~2.1 V
  // dominant level: ~63% of the dominant swing.
  return config.adc.quantize(0.63 * mean_dom);
}

vprofile::ExtractionConfig default_extraction(const VehicleConfig& config) {
  return vprofile::make_extraction_config(config.adc.sample_rate(),
                                          config.bitrate,
                                          default_bit_threshold(config));
}

}  // namespace sim
