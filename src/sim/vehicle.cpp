#include "sim/vehicle.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "canbus/frame.hpp"

namespace sim {

std::vector<std::uint8_t> EcuSpec::source_addresses() const {
  std::vector<std::uint8_t> sas;
  for (const auto& m : messages) {
    if (std::find(sas.begin(), sas.end(), m.id.source_address) == sas.end()) {
      sas.push_back(m.id.source_address);
    }
  }
  return sas;
}

Vehicle::Vehicle(VehicleConfig config, units::Seed64 seed)
    : config_(std::move(config)), rng_(seed) {
  if (config_.ecus.empty()) {
    throw std::invalid_argument("Vehicle: need at least one ECU");
  }
  std::map<std::uint8_t, std::size_t> sa_owner;
  for (std::size_t i = 0; i < config_.ecus.size(); ++i) {
    for (const auto& m : config_.ecus[i].messages) {
      if (m.node != i) {
        throw std::invalid_argument(
            "Vehicle: message node index does not match its ECU");
      }
      auto [it, inserted] = sa_owner.try_emplace(m.id.source_address, i);
      if (!inserted && it->second != i) {
        throw std::invalid_argument("Vehicle: SA owned by two ECUs");
      }
    }
  }
}

vprofile::SaDatabase Vehicle::database() const {
  vprofile::SaDatabase db;
  for (const auto& ecu : config_.ecus) {
    for (std::uint8_t sa : ecu.source_addresses()) db[sa] = ecu.name;
  }
  return db;
}

analog::SynthOptions Vehicle::synth_options() const {
  analog::SynthOptions opts;
  opts.bitrate = config_.bitrate;
  opts.sample_rate = config_.adc.sample_rate();
  opts.max_bits = config_.synth_max_bits;
  return opts;
}

std::vector<canbus::Transmission> Vehicle::schedule(std::size_t count) {
  std::vector<canbus::PeriodicMessage> all;
  for (const auto& ecu : config_.ecus) {
    for (canbus::PeriodicMessage m : ecu.messages) {
      // The sender's oscillator skew stretches its notion of a period.
      m.period_s *= 1.0 + ecu.clock_skew_ppm * 1e-6;
      all.push_back(m);
    }
  }
  canbus::Scheduler scheduler(std::move(all), config_.bitrate, rng_.fork());
  return scheduler.run(count);
}

std::vector<Capture> Vehicle::capture(std::size_t count,
                                      const analog::Environment& env) {
  return capture_with_env(count, [&env](double) { return env; });
}

std::vector<Capture> Vehicle::capture_with_env(
    std::size_t count,
    const std::function<analog::Environment(double)>& env_at) {
  std::vector<canbus::Transmission> txs = schedule(count);
  std::vector<Capture> out;
  out.reserve(txs.size());
  for (canbus::Transmission& tx : txs) {
    Capture cap = synthesize_message(tx.frame, tx.node, env_at(tx.start_s),
                                     tx.start_s);
    out.push_back(std::move(cap));
  }
  return out;
}

Capture Vehicle::synthesize_message(const canbus::DataFrame& frame,
                                    std::size_t ecu,
                                    const analog::Environment& env,
                                    double time_s) {
  if (ecu >= config_.ecus.size()) {
    throw std::out_of_range("Vehicle::synthesize_message: bad ECU index");
  }
  Capture cap =
      synthesize_foreign(frame, config_.ecus[ecu].signature, env, time_s);
  cap.true_ecu = ecu;
  return cap;
}

Capture Vehicle::synthesize_foreign(const canbus::DataFrame& frame,
                                    const analog::EcuSignature& signature,
                                    const analog::Environment& env,
                                    double time_s) {
  const canbus::BitVector wire = canbus::build_wire_bits(frame);
  const dsp::Trace volts = analog::synthesize_frame_voltage(
      wire, signature, env, synth_options(), rng_);
  Capture cap;
  cap.codes = config_.adc.quantize_trace(volts);
  cap.true_ecu = static_cast<std::size_t>(-1);  // not an onboard ECU
  cap.frame = frame;
  cap.time_s = time_s;
  return cap;
}

}  // namespace sim
