// Attack injection matching the paper's threat model (Section 3.1) and
// test procedures (Section 4.1).
//
//  * Hijack: an existing ECU transmits frames carrying an SA that belongs
//    to a different cluster (the paper's replay flips each message's SA
//    with 20 % probability).
//  * Foreign device: a device absent from the training data transmits
//    frames carrying a trained ECU's SA.  The paper uses the most-similar
//    ECU pair and has one imitate the other.
//
// Plus the adversarial models of Sagong et al. ("Mitigating
// Vulnerabilities of Voltage-based Intrusion Detection Systems in CAN",
// 2019), where the attacker actively manipulates the analog signal
// rather than merely replaying frames:
//
//  * Voltage-corruption masquerade: the attacker transmits concurrently
//    with the victim (overcurrent), superimposing its own driver onto the
//    victim's frames so the bus voltage no longer matches the victim's
//    fingerprint.
//  * Duplicate-signature imitation sweep: a foreign device tunes its
//    transceiver progressively closer to the target's signature across
//    the stream, searching for the point where the IDS stops seeing a
//    difference.
#pragma once

#include <cstdint>
#include <vector>

#include "analog/environment.hpp"
#include "sim/vehicle.hpp"

namespace sim {

/// A capture labelled with ground truth for scoring.
struct LabeledCapture {
  Capture capture;
  bool is_attack = false;
};

/// Generates `count` messages of bus traffic where each message is,
/// with probability `attack_prob`, rewritten to carry an SA owned by a
/// *different* ECU while keeping the true sender's waveform.  Requires at
/// least two ECUs; throws std::invalid_argument otherwise.
std::vector<LabeledCapture> make_hijack_stream(Vehicle& vehicle,
                                               std::size_t count,
                                               double attack_prob,
                                               const analog::Environment& env);

/// Generates `count` messages where the `imitator` ECU's own transmissions
/// are replaced by imitations of the `target` ECU: the frame carries the
/// target's identifier but the imitator's analog signature drives the bus.
/// All other ECUs transmit normally (and are labelled normal).  Throws
/// std::invalid_argument when imitator == target or either index is out of
/// range.
std::vector<LabeledCapture> make_foreign_stream(
    Vehicle& vehicle, std::size_t imitator, std::size_t target,
    std::size_t count, const analog::Environment& env);

/// Plain traffic, labelled all-normal — the false-positive test input.
std::vector<LabeledCapture> make_normal_stream(Vehicle& vehicle,
                                               std::size_t count,
                                               const analog::Environment& env);

/// Parameter-space interpolation between two transmitter signatures:
/// alpha = 0 returns `from`, alpha = 1 returns `to`.  Used by the
/// adversarial attack models below and exposed for tests.
analog::EcuSignature blend_signatures(const analog::EcuSignature& from,
                                      const analog::EcuSignature& to,
                                      double alpha);

/// Sagong-style voltage-corruption masquerade: whenever the `victim` ECU
/// transmits, the `attacker` ECU drives the bus at the same time, so the
/// victim's frames are captured with a corrupted waveform — the victim's
/// signature with the attacker's driver superimposed at `overdrive`
/// strength (0 = untouched, 1 = full second driver: dominant levels add
/// and the edge dynamics blend).  Corrupted frames are labelled attacks;
/// all other traffic is normal.  Throws std::invalid_argument when
/// attacker == victim or either index is out of range.
std::vector<LabeledCapture> make_masquerade_stream(
    Vehicle& vehicle, std::size_t attacker, std::size_t victim,
    std::size_t count, double overdrive, const analog::Environment& env);

/// Duplicate-signature imitation sweep: like make_foreign_stream, but the
/// foreign device's signature starts at the `imitator`'s own and is swept
/// linearly toward the `target`'s over the course of the stream (the
/// n-th attack transmission uses alpha = n / (attacks - 1)).  Early
/// frames are easy to flag, late frames approach a perfect duplicate —
/// the per-position detection outcome traces the detector's imitation
/// tolerance.  Throws std::invalid_argument on the same conditions as
/// make_foreign_stream.
std::vector<LabeledCapture> make_imitation_sweep_stream(
    Vehicle& vehicle, std::size_t imitator, std::size_t target,
    std::size_t count, const analog::Environment& env);

}  // namespace sim
