// Attack injection matching the paper's threat model (Section 3.1) and
// test procedures (Section 4.1).
//
//  * Hijack: an existing ECU transmits frames carrying an SA that belongs
//    to a different cluster (the paper's replay flips each message's SA
//    with 20 % probability).
//  * Foreign device: a device absent from the training data transmits
//    frames carrying a trained ECU's SA.  The paper uses the most-similar
//    ECU pair and has one imitate the other.
#pragma once

#include <cstdint>
#include <vector>

#include "analog/environment.hpp"
#include "sim/vehicle.hpp"

namespace sim {

/// A capture labelled with ground truth for scoring.
struct LabeledCapture {
  Capture capture;
  bool is_attack = false;
};

/// Generates `count` messages of bus traffic where each message is,
/// with probability `attack_prob`, rewritten to carry an SA owned by a
/// *different* ECU while keeping the true sender's waveform.  Requires at
/// least two ECUs; throws std::invalid_argument otherwise.
std::vector<LabeledCapture> make_hijack_stream(Vehicle& vehicle,
                                               std::size_t count,
                                               double attack_prob,
                                               const analog::Environment& env);

/// Generates `count` messages where the `imitator` ECU's own transmissions
/// are replaced by imitations of the `target` ECU: the frame carries the
/// target's identifier but the imitator's analog signature drives the bus.
/// All other ECUs transmit normally (and are labelled normal).  Throws
/// std::invalid_argument when imitator == target or either index is out of
/// range.
std::vector<LabeledCapture> make_foreign_stream(
    Vehicle& vehicle, std::size_t imitator, std::size_t target,
    std::size_t count, const analog::Environment& env);

/// Plain traffic, labelled all-normal — the false-positive test input.
std::vector<LabeledCapture> make_normal_stream(Vehicle& vehicle,
                                               std::size_t count,
                                               const analog::Environment& env);

}  // namespace sim
