#include "sim/scenario.hpp"

#include <stdexcept>
#include <utility>

#include "core/extractor.hpp"
#include "core/trainer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"
#include "pipeline/pipeline.hpp"
#include "sim/experiment.hpp"
#include "sim/presets.hpp"

namespace sim {
namespace {

/// FNV-1a over raw bytes; the only property needed is determinism across
/// runs and platforms, not cryptographic strength.
std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t fnv1a_init() { return 0xcbf29ce484222325ULL; }

std::uint64_t hash_u64(std::uint64_t hash, std::uint64_t value) {
  return fnv1a(hash, &value, sizeof(value));
}

}  // namespace

units::Seed64 derive_stream_seed(units::Seed64 seed,
                                 const std::string& purpose) {
  std::uint64_t h = hash_u64(fnv1a_init(), seed.value());
  h = fnv1a(h, purpose.data(), purpose.size());
  // Avoid the degenerate all-zero mt19937 seed.
  return units::Seed64{h == 0 ? 0x9e3779b97f4a7c15ULL : h};
}

const char* to_string(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone: return "none";
    case AttackKind::kHijack: return "hijack";
    case AttackKind::kForeign: return "foreign";
    case AttackKind::kMasquerade: return "masquerade";
    case AttackKind::kImitationSweep: return "imitation-sweep";
  }
  return "unknown";
}

std::string Scenario::name() const {
  return preset + "/" + vprofile::to_string(metric) + "/" +
         to_string(attack) + "/" + faults.name + "/" + env_name;
}

std::uint64_t ScenarioMetrics::fingerprint() const {
  std::uint64_t h = fnv1a_init();
  h = hash_u64(h, confusion.true_positives());
  h = hash_u64(h, confusion.true_negatives());
  h = hash_u64(h, confusion.false_positives());
  h = hash_u64(h, confusion.false_negatives());
  h = hash_u64(h, extraction_failures);
  h = hash_u64(h, degraded);
  for (std::uint64_t a : fault_stats.applied) h = hash_u64(h, a);
  h = hash_u64(h, fault_stats.faulted_traces);
  h = hash_u64(h, fault_stats.total_traces);
  for (std::uint64_t e : pipeline_counters.extract_errors) h = hash_u64(h, e);
  for (std::uint64_t v : pipeline_counters.verdicts) h = hash_u64(h, v);
  h = hash_u64(h, pipeline_counters.worker_errors);
  return h;
}

VehicleConfig scenario_vehicle(const Scenario& scenario) {
  if (scenario.preset == "a") return vehicle_a();
  if (scenario.preset == "b") return vehicle_b();
  throw std::invalid_argument("scenario_vehicle: unknown preset '" +
                              scenario.preset + "'");
}

vprofile::DetectionConfig scenario_detection_config(
    const VehicleConfig& config, double margin) {
  vprofile::DetectionConfig dc;
  dc.margin = margin;
  // Rails just inside the digitizer limits: clean captures peak around
  // 90% of full scale (see bench_fig2_5_4_2_profiles), so 98% only trips
  // on genuine saturation; codes at/below zero only appear when samples
  // were dropped or the offset collapsed.
  dc.saturation_code = 0.98 * static_cast<double>(config.adc.max_code());
  dc.dead_code = 0.5;
  dc.degraded_fraction = 0.25;
  dc.flat_run_min = 6;
  return dc;
}

ScenarioRunner::ScenarioRunner(units::Seed64 seed) : seed_(seed) {}

void ScenarioRunner::set_observability(obs::MetricsRegistry* metrics,
                                       obs::Tracer* tracer) {
  metrics_ = metrics;
  tracer_ = tracer;
}

const ScenarioRunner::CachedModel& ScenarioRunner::model_for(
    const Scenario& scenario) {
  const std::string key = scenario.preset + "/" +
                          vprofile::to_string(scenario.metric) + "/" +
                          scenario.env_name + "/" +
                          std::to_string(scenario.train_count);
  auto it = model_cache_.find(key);
  if (it != model_cache_.end()) return it->second;

  CachedModel cached;
  const VehicleConfig config = scenario_vehicle(scenario);
  Vehicle vehicle(config, derive_stream_seed(seed_, "train/" + key));
  const vprofile::ExtractionConfig extraction = default_extraction(config);

  std::vector<vprofile::EdgeSet> edge_sets;
  edge_sets.reserve(scenario.train_count);
  for (const Capture& cap :
       vehicle.capture(scenario.train_count, scenario.env)) {
    if (auto es = vprofile::extract_edge_set(cap.codes, extraction)) {
      edge_sets.push_back(std::move(*es));
    }
  }
  vprofile::TrainingConfig tc;
  tc.metric = scenario.metric;
  tc.extraction = extraction;
  tc.metrics = metrics_;
  tc.tracer = tracer_;
  vprofile::TrainOutcome outcome =
      vprofile::train_with_database(edge_sets, vehicle.database(), tc);
  if (outcome.ok()) {
    cached.model =
        std::make_shared<const vprofile::Model>(std::move(*outcome.model));
  } else {
    cached.error = outcome.error;
  }
  return model_cache_.emplace(key, std::move(cached)).first->second;
}

std::shared_ptr<const vprofile::Model> ScenarioRunner::trained_model(
    const Scenario& scenario, std::string* error) {
  const CachedModel& cached = model_for(scenario);
  if (error != nullptr) *error = cached.error;
  return cached.model;
}

ScenarioResult ScenarioRunner::run(const Scenario& scenario) {
  ScenarioResult result;
  const CachedModel& cached = model_for(scenario);
  if (!cached.model) {
    result.error = cached.error;
    return result;
  }
  const vprofile::Model& model = *cached.model;

  const VehicleConfig config = scenario_vehicle(scenario);
  Vehicle vehicle(config,
                  derive_stream_seed(seed_, "stream/" + scenario.name()));

  std::vector<LabeledCapture> stream;
  switch (scenario.attack) {
    case AttackKind::kNone:
      stream = make_normal_stream(vehicle, scenario.test_count, scenario.env);
      break;
    case AttackKind::kHijack:
      stream = make_hijack_stream(vehicle, scenario.test_count,
                                  scenario.attack_prob, scenario.env);
      break;
    case AttackKind::kForeign: {
      const auto [imitator, target] = Experiment::most_similar_pair(model);
      stream = make_foreign_stream(vehicle, imitator, target,
                                   scenario.test_count, scenario.env);
      break;
    }
    case AttackKind::kMasquerade: {
      const auto [attacker, victim] = Experiment::most_similar_pair(model);
      stream = make_masquerade_stream(vehicle, attacker, victim,
                                      scenario.test_count, scenario.overdrive,
                                      scenario.env);
      break;
    }
    case AttackKind::kImitationSweep: {
      const auto [imitator, target] = Experiment::most_similar_pair(model);
      stream = make_imitation_sweep_stream(vehicle, imitator, target,
                                           scenario.test_count, scenario.env);
      break;
    }
  }

  // The fault layer corrupts what the tap records, never what the bus
  // carried: labels stay attached to the original transmissions.
  faults::FaultInjector injector(
      scenario.faults, static_cast<double>(config.adc.max_code()),
      derive_stream_seed(seed_, "faults/" + scenario.name()));
  injector.bind_metrics(metrics_);
  {
    obs::TraceSpan fault_span(tracer_, "scenario.inject_faults");
    for (LabeledCapture& lc : stream) {
      lc.capture.codes = injector.apply(lc.capture.codes);
    }
  }

  // Score through the real streaming pipeline (one worker keeps results
  // in capture order and bit-identical to sequential scoring) so the
  // scenario grid regression-covers pipeline code, not just detect().
  pipeline::PipelineConfig pc;
  pc.num_workers = 1;
  pc.queue_capacity = 256;
  pc.block_when_full = true;
  pc.metrics = metrics_;
  pc.tracer = tracer_;
  if (scenario.quality_gating) {
    pc.detection = scenario_detection_config(config, scenario.margin);
  } else {
    pc.detection.margin = scenario.margin;
  }

  std::vector<pipeline::FrameResult> frames;
  frames.reserve(stream.size());
  {
    pipeline::DetectionPipeline pipe(
        model, pc,
        [&](pipeline::FrameResult&& r) { frames.push_back(std::move(r)); });
    for (const LabeledCapture& lc : stream) pipe.submit(lc.capture.codes);
    pipe.finish();
    result.metrics.pipeline_counters = pipe.counters();
  }

  for (const pipeline::FrameResult& r : frames) {
    if (!r.ok()) {
      ++result.metrics.extraction_failures;
      continue;
    }
    if (r.detection->is_degraded()) {
      ++result.metrics.degraded;
      continue;
    }
    result.metrics.confusion.add(stream[r.seq].is_attack,
                                 r.detection->is_anomaly());
  }
  result.metrics.fault_stats = injector.stats();
  return result;
}

}  // namespace sim
