// Simulated test vehicle: a set of ECUs with analog signatures and
// periodic J1939 traffic, captured through a digitizer model.
//
// This is the stand-in for the paper's two instrumented trucks
// ("Vehicle A": 2016 Peterbilt 579, 20 MS/s / 16 bit; "Vehicle B":
// confidential, 10 MS/s / 12 bit); presets.hpp provides both.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analog/environment.hpp"
#include "analog/signature.hpp"
#include "analog/synth.hpp"
#include "canbus/scheduler.hpp"
#include "core/trainer.hpp"
#include "core/units.hpp"
#include "dsp/adc.hpp"
#include "stats/rng.hpp"

namespace sim {

/// One ECU: its analog signature and the periodic messages it owns.
struct EcuSpec {
  std::string name;
  analog::EcuSignature signature;
  /// Periodic messages; the `node` field must equal this ECU's index in
  /// the vehicle's ECU list.
  std::vector<canbus::PeriodicMessage> messages;
  /// Oscillator skew in parts per million; scales this ECU's effective
  /// message periods.  The fingerprint timing-based IDSs exploit
  /// (Section 1.2.2).
  double clock_skew_ppm = 0.0;

  /// Distinct SAs this ECU transmits (derived from `messages`).
  std::vector<std::uint8_t> source_addresses() const;
};

/// Complete vehicle description.
struct VehicleConfig {
  std::string name;
  units::BitRateBps bitrate{250.0e3};
  dsp::AdcModel adc{units::SampleRateHz{20.0e6}, 16};
  std::vector<EcuSpec> ecus;
  /// Wire bits synthesized per message.  vProfile only reads the start of
  /// a message, so synthesis is truncated for speed; raise this if
  /// extraction configs need to look deeper into the frame.
  std::size_t synth_max_bits = 72;
};

/// One digitized message capture.
struct Capture {
  dsp::Trace codes;      // quantized ADC codes
  std::size_t true_ecu;  // which ECU actually drove the bus
  canbus::DataFrame frame;
  double time_s = 0.0;
};

/// Generates traffic and converts it to digitized voltage captures.
class Vehicle {
 public:
  /// Throws std::invalid_argument for an empty ECU list, a message whose
  /// `node` is out of range, or an SA owned by two ECUs.
  Vehicle(VehicleConfig config, units::Seed64 seed);
  Vehicle(VehicleConfig config, std::uint64_t seed)
      : Vehicle(std::move(config), units::Seed64{seed}) {}

  const VehicleConfig& config() const { return config_; }

  /// The "fortunate" SA database: SA -> ECU name.
  vprofile::SaDatabase database() const;

  /// Captures `count` messages under a fixed environment.
  std::vector<Capture> capture(std::size_t count,
                               const analog::Environment& env);

  /// Captures `count` messages with a time-varying environment.
  std::vector<Capture> capture_with_env(
      std::size_t count,
      const std::function<analog::Environment(double time_s)>& env_at);

  /// Digitizes one frame as transmitted by the given ECU (used by attack
  /// injection and by tests).  Throws std::out_of_range on a bad index.
  Capture synthesize_message(const canbus::DataFrame& frame, std::size_t ecu,
                             const analog::Environment& env,
                             double time_s = 0.0);

  /// Same, but with an arbitrary signature (foreign devices are not in the
  /// ECU list).
  Capture synthesize_foreign(const canbus::DataFrame& frame,
                             const analog::EcuSignature& signature,
                             const analog::Environment& env,
                             double time_s = 0.0);

  /// Fresh traffic transmissions without analog synthesis (attack streams
  /// post-process these).
  std::vector<canbus::Transmission> schedule(std::size_t count);

  stats::Rng& rng() { return rng_; }

 private:
  analog::SynthOptions synth_options() const;

  VehicleConfig config_;
  stats::Rng rng_;
};

}  // namespace sim
