// CAN 2.0A standard data frames (11-bit identifier).
//
// The paper's vehicles speak J1939 (extended frames only) and its future
// work calls out adapting vProfile to the standard format used by most
// consumer cars (Section 6.1).  This header provides the frame layer for
// that: build and parse standard data frames, with the field positions
// the extractor needs.
#pragma once

#include <cstdint>
#include <optional>

#include "canbus/crc15.hpp"
#include "canbus/frame.hpp"
#include "core/units.hpp"

namespace canbus {

/// A CAN 2.0A standard data frame.
struct StandardDataFrame {
  std::uint16_t id = 0;  // 11 bits; lower value = higher priority
  Payload payload;       // 0-8 bytes

  bool operator==(const StandardDataFrame&) const = default;
};

/// Zero-based positions of fields within the *unstuffed* standard data
/// frame, SOF = bit 0.
namespace standard_frame_bits {
inline constexpr units::BitIndex kSof{0};
inline constexpr units::BitIndex kIdFirst{1};   // 11 bits: 1..11
inline constexpr units::BitIndex kIdLast{11};
inline constexpr units::BitIndex kRtr{12};
/// First bit after the arbitration field (IDE, dominant for standard
/// frames) — the edge-set search starts at or after this bit.
inline constexpr units::BitIndex kFirstPostArbitration{13};
inline constexpr units::BitIndex kDlcFirst{15};  // 4 bits: 15..18
inline constexpr units::BitIndex kDataFirst{19};
}  // namespace standard_frame_bits

/// Unstuffed logical bitstream, SOF through EOF.  Throws
/// std::invalid_argument for ids needing > 11 bits or payloads > 8 bytes.
BitVector build_unstuffed_bits(const StandardDataFrame& frame);

/// On-wire bitstream: stuffed SOF..CRC plus the fixed-form tail.
BitVector build_wire_bits(const StandardDataFrame& frame);

/// Parses an on-wire standard frame; std::nullopt on stuff violations,
/// malformed fixed bits, or CRC mismatch.
std::optional<StandardDataFrame> parse_standard_wire_bits(
    const BitVector& wire);

}  // namespace canbus
