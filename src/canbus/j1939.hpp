// SAE J1939 29-bit identifier layout (Fig 2.4 / Table 2.2):
//   priority (3 bits) | parameter group number (18 bits) | source address (8).
#pragma once

#include <cstdint>
#include <string>

namespace canbus {

/// Decomposed J1939 identifier.
struct J1939Id {
  std::uint8_t priority = 0;  // 3 bits, 0 is highest priority
  std::uint32_t pgn = 0;      // 18 bits
  std::uint8_t source_address = 0;

  /// Packs into the 29-bit CAN extended identifier.  Throws
  /// std::invalid_argument when priority or pgn exceed their field widths.
  std::uint32_t pack() const;

  /// Unpacks a 29-bit identifier; throws when the value needs > 29 bits.
  static J1939Id unpack(std::uint32_t id29);

  bool operator==(const J1939Id&) const = default;

  std::string to_string() const;
};

/// Number of bits in an extended CAN identifier.
inline constexpr int kExtendedIdBits = 29;
/// Bit width of the J1939 source address field.
inline constexpr int kSourceAddressBits = 8;

}  // namespace canbus
