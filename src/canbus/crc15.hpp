// CAN's 15-bit BCH CRC (generator polynomial x^15 + x^14 + x^10 + x^8 +
// x^7 + x^4 + x^3 + 1, i.e. 0x4599), computed over the unstuffed bits from
// SOF through the end of the data field.
#pragma once

#include <cstdint>
#include <vector>

namespace canbus {

/// One on-wire bit; true = recessive ('1'), false = dominant ('0').
using Bit = bool;
using BitVector = std::vector<Bit>;

/// Computes the 15-bit CRC over a bit sequence.
std::uint16_t crc15(const BitVector& bits);

/// Appends the 15 CRC bits (MSB first) for `bits` to `out`.
void append_crc15(const BitVector& bits, BitVector& out);

}  // namespace canbus
