// CSMA/CR bitwise arbitration (Section 2.1.2, Fig 2.3).  On a wired-AND bus
// a dominant ('0') bit overwrites recessive ('1'), so the contender with
// the numerically smallest arbitration field wins without losing time.
#pragma once

#include <cstddef>
#include <vector>

#include "canbus/frame.hpp"

namespace canbus {

/// Outcome of one arbitration round.
struct ArbitrationResult {
  std::size_t winner = 0;  // index into the contender list
  /// Bit position (unstuffed, SOF = 0) at which each loser backed off;
  /// the winner's entry is the full arbitration field length.
  std::vector<std::size_t> lost_at_bit;
};

/// Resolves simultaneous transmission starts.  `contenders` must be
/// non-empty and contain distinct identifiers (two nodes transmitting the
/// same ID would collide undetectably, which J1939 forbids).  Throws
/// std::invalid_argument on an empty list or duplicate IDs.
ArbitrationResult arbitrate(const std::vector<DataFrame>& contenders);

}  // namespace canbus
