// CAN remote frames (extended format): a receiver's request for a data
// frame, carrying an identifier and DLC but no data field, with RTR
// recessive.  One of the four frame types of Table 2.1's surrounding
// spec; included so the traffic substrate covers request/response
// patterns (remote frames are also a classic injection vector — a forged
// remote frame solicits traffic from a victim ECU).
#pragma once

#include <cstdint>
#include <optional>

#include "canbus/crc15.hpp"
#include "canbus/j1939.hpp"

namespace canbus {

/// An extended remote frame: identifier + requested DLC, no payload.
struct RemoteFrame {
  J1939Id id;
  std::uint8_t dlc = 0;  // requested data length, 0-8

  bool operator==(const RemoteFrame&) const = default;
};

/// Unstuffed logical bitstream (SOF..EOF).  Throws std::invalid_argument
/// when dlc > 8.
BitVector build_unstuffed_bits(const RemoteFrame& frame);

/// On-wire bitstream: stuffed SOF..CRC plus the fixed-form tail.
BitVector build_wire_bits(const RemoteFrame& frame);

/// Parses an on-wire extended remote frame; std::nullopt on malformed
/// input, a data frame (RTR dominant), or CRC mismatch.
std::optional<RemoteFrame> parse_remote_wire_bits(const BitVector& wire);

}  // namespace canbus
