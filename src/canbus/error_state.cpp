#include "canbus/error_state.hpp"

#include <algorithm>

namespace canbus {

const char* to_string(ErrorState state) {
  switch (state) {
    case ErrorState::kErrorActive: return "error-active";
    case ErrorState::kErrorPassive: return "error-passive";
    case ErrorState::kBusOff: return "bus-off";
  }
  return "unknown";
}

ErrorState ErrorCounters::state() const {
  if (bus_off_) return ErrorState::kBusOff;
  if (tec_ > 127 || rec_ > 127) return ErrorState::kErrorPassive;
  return ErrorState::kErrorActive;
}

void ErrorCounters::on_transmit_error() {
  if (bus_off_) return;
  tec_ = static_cast<std::uint16_t>(tec_ + 8);
  if (tec_ > 255) bus_off_ = true;
}

void ErrorCounters::on_receive_error(bool primary) {
  if (bus_off_) return;
  rec_ = static_cast<std::uint16_t>(rec_ + (primary ? 8 : 1));
}

void ErrorCounters::on_transmit_success() {
  if (bus_off_) return;
  if (tec_ > 0) --tec_;
}

void ErrorCounters::on_receive_success() {
  if (bus_off_) return;
  if (rec_ > 127) {
    // The spec sets REC to a value between 119 and 127 after a successful
    // reception while error-passive; use the upper bound deterministically.
    rec_ = 127;
  } else if (rec_ > 0) {
    --rec_;
  }
}

void ErrorCounters::recover_from_bus_off() {
  bus_off_ = false;
  tec_ = 0;
  rec_ = 0;
}

}  // namespace canbus
