#include "canbus/remote_frame.hpp"

#include <stdexcept>

#include "canbus/frame.hpp"
#include "canbus/stuffing.hpp"

namespace canbus {
namespace {

void push_bits_msb_first(std::uint32_t value, int width, BitVector& out) {
  for (int i = width - 1; i >= 0; --i) out.push_back(((value >> i) & 1u) != 0);
}

std::uint32_t read_bits_msb_first(const BitVector& bits, units::BitIndex first,
                                  int width) {
  std::uint32_t v = 0;
  for (int i = 0; i < width; ++i) {
    const std::size_t at = (first + static_cast<std::size_t>(i)).value();
    v = (v << 1) | (bits[at] ? 1u : 0u);
  }
  return v;
}

BitVector build_stuffable_region(const RemoteFrame& frame) {
  if (frame.dlc > 8) {
    throw std::invalid_argument("remote frame: dlc > 8");
  }
  const std::uint32_t id29 = frame.id.pack();
  BitVector bits;
  bits.push_back(false);                      // SOF
  push_bits_msb_first(id29 >> 18, 11, bits);  // Base ID
  bits.push_back(true);                       // SRR
  bits.push_back(true);                       // IDE
  push_bits_msb_first(id29 & 0x3FFFF, 18, bits);
  bits.push_back(true);                       // RTR: recessive = remote
  bits.push_back(false);                      // r1
  bits.push_back(false);                      // r0
  push_bits_msb_first(frame.dlc, 4, bits);    // DLC (no data follows)
  append_crc15(bits, bits);
  return bits;
}

void append_tail(BitVector& bits) {
  bits.push_back(true);   // CRC delimiter
  bits.push_back(false);  // ACK slot
  bits.push_back(true);   // ACK delimiter
  for (int i = 0; i < 7; ++i) bits.push_back(true);
}

}  // namespace

BitVector build_unstuffed_bits(const RemoteFrame& frame) {
  BitVector bits = build_stuffable_region(frame);
  append_tail(bits);
  return bits;
}

BitVector build_wire_bits(const RemoteFrame& frame) {
  BitVector bits = stuff(build_stuffable_region(frame));
  append_tail(bits);
  return bits;
}

std::optional<RemoteFrame> parse_remote_wire_bits(const BitVector& wire) {
  // A remote frame's stuffable region is fixed-length (no data field):
  // 39 header bits + 15 CRC.
  constexpr std::size_t kStuffableLen = 39 + 15;

  BitVector unstuffed;
  std::size_t run = 0;
  bool run_value = false;
  bool skip_next = false;
  std::size_t wire_pos = 0;
  for (; wire_pos < wire.size(); ++wire_pos) {
    const Bit b = wire[wire_pos];
    if (skip_next) {
      if (b == run_value) return std::nullopt;
      skip_next = false;
      run_value = b;
      run = 1;
      continue;
    }
    if (run > 0 && b == run_value) {
      ++run;
    } else {
      run_value = b;
      run = 1;
    }
    unstuffed.push_back(b);
    if (run == 5) skip_next = true;
    if (unstuffed.size() == kStuffableLen) {
      ++wire_pos;
      break;
    }
  }
  if (unstuffed.size() != kStuffableLen) return std::nullopt;
  if (skip_next) {
    if (wire_pos >= wire.size() || wire[wire_pos] == run_value) {
      return std::nullopt;
    }
    ++wire_pos;
  }

  static constexpr Bit kTail[] = {true, false, true, true, true,
                                  true, true,  true, true, true};
  for (Bit expected : kTail) {
    if (wire_pos >= wire.size() || wire[wire_pos] != expected) {
      return std::nullopt;
    }
    ++wire_pos;
  }

  namespace fb = frame_bits;
  if (unstuffed[fb::kSof.value()]) return std::nullopt;
  if (!unstuffed[fb::kSrr.value()] || !unstuffed[fb::kIde.value()]) {
    return std::nullopt;
  }
  if (!unstuffed[fb::kRtr.value()]) return std::nullopt;  // recessive

  const std::size_t crc_first = kStuffableLen - 15;
  BitVector body(unstuffed.begin(),
                 unstuffed.begin() + static_cast<std::ptrdiff_t>(crc_first));
  if (crc15(body) != static_cast<std::uint16_t>(read_bits_msb_first(
                         unstuffed, units::BitIndex{crc_first}, 15))) {
    return std::nullopt;
  }

  RemoteFrame frame;
  const std::uint32_t base =
      read_bits_msb_first(unstuffed, fb::kBaseIdFirst, 11);
  const std::uint32_t ext =
      read_bits_msb_first(unstuffed, fb::kExtIdFirst, 18);
  frame.id = J1939Id::unpack((base << 18) | ext);
  frame.dlc = static_cast<std::uint8_t>(
      read_bits_msb_first(unstuffed, fb::kDlcFirst, 4));
  if (frame.dlc > 8) return std::nullopt;
  return frame;
}

}  // namespace canbus
