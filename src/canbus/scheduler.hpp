// Periodic J1939 traffic scheduling with bitwise-arbitration conflict
// resolution.  Produces the transmission timeline the analog front end
// turns into voltage captures.
#pragma once

#include <cstdint>
#include <vector>

#include "canbus/frame.hpp"
#include "core/units.hpp"
#include "stats/rng.hpp"

namespace canbus {

/// A periodic message definition, owned by one node (ECU).
struct PeriodicMessage {
  J1939Id id;
  double period_s = 0.1;
  /// Uniform release jitter in [0, jitter_s), modelling task-level timing
  /// noise in the sending ECU.
  double jitter_s = 0.0;
  std::size_t node = 0;      // transmitting ECU index
  std::size_t payload_len = 8;
};

/// One completed transmission on the bus.
struct Transmission {
  double start_s = 0.0;   // SOF time
  std::size_t node = 0;   // which ECU won the bus
  DataFrame frame;
};

/// Event-driven scheduler: releases periodic messages with jitter, resolves
/// simultaneous contenders by CAN arbitration, and serializes frames onto a
/// single bus of the given bitrate.
class Scheduler {
 public:
  /// Throws std::invalid_argument for an empty message set, non-positive
  /// bitrate, or non-positive periods.
  Scheduler(std::vector<PeriodicMessage> messages, units::BitRateBps bitrate,
            stats::Rng rng);

  /// Runs until `count` transmissions have completed and returns them in
  /// bus order.  Payload bytes are drawn from the scheduler's RNG.
  std::vector<Transmission> run(std::size_t count);

 private:
  std::vector<PeriodicMessage> messages_;
  units::BitRateBps bitrate_;
  stats::Rng rng_;
};

}  // namespace canbus
