#include "canbus/arbitration.hpp"

#include <algorithm>
#include <stdexcept>

namespace canbus {
namespace {

// Arbitration-relevant bits of the unstuffed frame: SOF through RTR
// (bit 32).  Stuff bits participate too on a real bus, but contenders that
// are bit-identical up to a point insert identical stuff bits, so comparing
// unstuffed prefixes is equivalent.
BitVector arbitration_bits(const DataFrame& f) {
  BitVector all = build_unstuffed_bits(f);
  return BitVector(all.begin(),
                   all.begin() + static_cast<std::ptrdiff_t>(
                                     (frame_bits::kRtr + 1).value()));
}

}  // namespace

ArbitrationResult arbitrate(const std::vector<DataFrame>& contenders) {
  if (contenders.empty()) {
    throw std::invalid_argument("arbitrate: empty contender list");
  }
  for (std::size_t i = 0; i < contenders.size(); ++i) {
    for (std::size_t j = i + 1; j < contenders.size(); ++j) {
      if (contenders[i].id.pack() == contenders[j].id.pack()) {
        throw std::invalid_argument("arbitrate: duplicate identifiers");
      }
    }
  }

  std::vector<BitVector> bits;
  bits.reserve(contenders.size());
  for (const auto& c : contenders) bits.push_back(arbitration_bits(c));

  ArbitrationResult result;
  result.lost_at_bit.assign(contenders.size(), 0);
  std::vector<bool> active(contenders.size(), true);
  std::size_t active_count = contenders.size();

  const std::size_t field_len = bits.front().size();
  for (std::size_t bit = 0; bit < field_len && active_count > 1; ++bit) {
    // Wired-AND: bus is dominant (0) if any active node drives dominant.
    bool bus_recessive = true;
    for (std::size_t i = 0; i < contenders.size(); ++i) {
      if (active[i] && !bits[i][bit]) {
        bus_recessive = false;
        break;
      }
    }
    for (std::size_t i = 0; i < contenders.size(); ++i) {
      // A node transmitting recessive that reads dominant has lost.
      if (active[i] && bits[i][bit] && !bus_recessive) {
        active[i] = false;
        result.lost_at_bit[i] = bit;
        --active_count;
      }
    }
  }

  for (std::size_t i = 0; i < contenders.size(); ++i) {
    if (active[i]) {
      result.winner = i;
      result.lost_at_bit[i] = field_len;
      break;
    }
  }
  return result;
}

}  // namespace canbus
