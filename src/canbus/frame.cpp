#include "canbus/frame.hpp"

#include <stdexcept>

#include "canbus/stuffing.hpp"

namespace canbus {
namespace {

void push_bits_msb_first(std::uint32_t value, int width, BitVector& out) {
  for (int i = width - 1; i >= 0; --i) out.push_back(((value >> i) & 1u) != 0);
}

// SOF through the CRC sequence: the region bit stuffing applies to.
BitVector build_stuffable_region(const DataFrame& frame) {
  if (frame.payload.size() > 8) {
    throw std::invalid_argument("build_stuffable_region: payload > 8 bytes");
  }
  const std::uint32_t id29 = frame.id.pack();
  BitVector bits;
  bits.reserve(64 + frame.payload.size() * 8 + 15);

  bits.push_back(false);                       // SOF: dominant
  push_bits_msb_first(id29 >> 18, 11, bits);   // Base ID = ID28..ID18
  bits.push_back(true);                        // SRR: recessive
  bits.push_back(true);                        // IDE: recessive (extended)
  push_bits_msb_first(id29 & 0x3FFFF, 18, bits);  // Ext ID = ID17..ID0
  bits.push_back(false);                       // RTR: dominant (data frame)
  bits.push_back(false);                       // r1
  bits.push_back(false);                       // r0
  push_bits_msb_first(static_cast<std::uint32_t>(frame.payload.size()), 4,
                      bits);                   // DLC
  for (std::uint8_t byte : frame.payload) push_bits_msb_first(byte, 8, bits);

  append_crc15(bits, bits);                    // CRC over SOF..data
  return bits;
}

void append_tail(BitVector& bits) {
  bits.push_back(true);   // CRC delimiter
  bits.push_back(false);  // ACK slot, asserted dominant by receivers
  bits.push_back(true);   // ACK delimiter
  for (int i = 0; i < 7; ++i) bits.push_back(true);  // EOF
}

std::uint32_t read_bits_msb_first(const BitVector& bits,
                                  units::BitIndex first, int width) {
  std::uint32_t v = 0;
  for (int i = 0; i < width; ++i) {
    const std::size_t at = first.value() + static_cast<std::size_t>(i);
    v = (v << 1) | (bits[at] ? 1u : 0u);
  }
  return v;
}

}  // namespace

BitVector build_unstuffed_bits(const DataFrame& frame) {
  BitVector bits = build_stuffable_region(frame);
  append_tail(bits);
  return bits;
}

BitVector build_wire_bits(const DataFrame& frame) {
  BitVector bits = stuff(build_stuffable_region(frame));
  append_tail(bits);
  return bits;
}

std::optional<DataFrame> parse_wire_bits(const BitVector& wire) {
  // Incrementally destuff until the frame length (known once the DLC is
  // decoded) is reached, then validate the fixed-form tail.
  BitVector unstuffed;
  unstuffed.reserve(wire.size());
  std::size_t run = 0;
  bool run_value = false;
  bool skip_next = false;
  std::size_t stuffable_len = 0;  // unknown until DLC parsed
  std::size_t wire_pos = 0;

  for (; wire_pos < wire.size(); ++wire_pos) {
    const Bit b = wire[wire_pos];
    if (skip_next) {
      if (b == run_value) return std::nullopt;  // stuff violation
      skip_next = false;
      run_value = b;
      run = 1;
      continue;
    }
    if (run > 0 && b == run_value) {
      ++run;
    } else {
      run_value = b;
      run = 1;
    }
    unstuffed.push_back(b);
    if (run == 5) skip_next = true;

    if (stuffable_len == 0 &&
        unstuffed.size() > (frame_bits::kDlcFirst + 3).value()) {
      const std::uint32_t dlc =
          read_bits_msb_first(unstuffed, frame_bits::kDlcFirst, 4);
      if (dlc > 8) return std::nullopt;
      stuffable_len = frame_bits::kDataFirst.value() + 8 * dlc + 15;
    }
    if (stuffable_len != 0 && unstuffed.size() == stuffable_len) {
      ++wire_pos;
      break;
    }
  }
  if (stuffable_len == 0 || unstuffed.size() != stuffable_len) {
    return std::nullopt;  // truncated frame
  }
  // A run of five ending exactly on the last CRC bit still inserts a
  // stuff bit before the (unstuffed) CRC delimiter; consume it.
  if (skip_next) {
    if (wire_pos >= wire.size() || wire[wire_pos] == run_value) {
      return std::nullopt;
    }
    ++wire_pos;
  }

  // Fixed-form tail: CRC delim, ACK slot, ACK delim, 7 x EOF.
  static constexpr Bit kTail[] = {true, false, true, true, true,
                                  true, true,  true, true, true};
  for (Bit expected : kTail) {
    if (wire_pos >= wire.size() || wire[wire_pos] != expected) {
      return std::nullopt;
    }
    ++wire_pos;
  }

  // Structural checks on fixed bits.
  namespace fb = frame_bits;
  if (unstuffed[fb::kSof.value()]) return std::nullopt;   // SOF must be 0
  if (!unstuffed[fb::kSrr.value()]) return std::nullopt;  // SRR must be 1
  if (!unstuffed[fb::kIde.value()]) return std::nullopt;  // IDE must be 1
  if (unstuffed[fb::kRtr.value()]) return std::nullopt;   // RTR must be 0

  // CRC check: recompute over SOF..data.
  const std::size_t crc_first = stuffable_len - 15;
  BitVector body(unstuffed.begin(),
                 unstuffed.begin() + static_cast<std::ptrdiff_t>(crc_first));
  const std::uint16_t expected_crc = crc15(body);
  const std::uint16_t got_crc =
      static_cast<std::uint16_t>(
          read_bits_msb_first(unstuffed, units::BitIndex{crc_first}, 15));
  if (expected_crc != got_crc) return std::nullopt;

  DataFrame frame;
  const std::uint32_t base =
      read_bits_msb_first(unstuffed, frame_bits::kBaseIdFirst, 11);
  const std::uint32_t ext =
      read_bits_msb_first(unstuffed, frame_bits::kExtIdFirst, 18);
  frame.id = J1939Id::unpack((base << 18) | ext);
  const std::uint32_t dlc =
      read_bits_msb_first(unstuffed, frame_bits::kDlcFirst, 4);
  frame.payload.resize(dlc);
  for (std::uint32_t i = 0; i < dlc; ++i) {
    frame.payload[i] = static_cast<std::uint8_t>(
        read_bits_msb_first(unstuffed, frame_bits::kDataFirst + 8 * i, 8));
  }
  return frame;
}

std::size_t wire_bit_count(const DataFrame& frame) {
  return build_wire_bits(frame).size();
}

}  // namespace canbus
