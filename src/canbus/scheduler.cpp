#include "canbus/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "canbus/arbitration.hpp"

namespace canbus {

Scheduler::Scheduler(std::vector<PeriodicMessage> messages,
                     units::BitRateBps bitrate, stats::Rng rng)
    : messages_(std::move(messages)), bitrate_(bitrate), rng_(rng) {
  if (messages_.empty()) {
    throw std::invalid_argument("Scheduler: empty message set");
  }
  if (bitrate_ <= units::BitRateBps{0.0}) {
    throw std::invalid_argument("Scheduler: bitrate must be positive");
  }
  for (const auto& m : messages_) {
    if (m.period_s <= 0.0) {
      throw std::invalid_argument("Scheduler: periods must be positive");
    }
    if (m.payload_len > 8) {
      throw std::invalid_argument("Scheduler: payload_len > 8");
    }
  }
}

std::vector<Transmission> Scheduler::run(std::size_t count) {
  const std::size_t n = messages_.size();
  // Periodic tasks release on an absolute grid (phase + k * period) with
  // bounded per-instance jitter — jitter does not accumulate across
  // instances, matching crystal-driven ECU schedulers.  Initial phases are
  // spread across the period so the bus does not start with a
  // synchronized burst.
  std::vector<double> phase(n);
  std::vector<std::uint64_t> instance(n, 0);
  std::vector<double> next_release(n);
  for (std::size_t i = 0; i < n; ++i) {
    phase[i] = rng_.uniform() * messages_[i].period_s;
    next_release[i] = phase[i] + rng_.uniform() * messages_[i].jitter_s;
  }

  std::vector<Transmission> out;
  out.reserve(count);
  double bus_free_at = 0.0;

  while (out.size() < count) {
    // The bus becomes interesting at the later of "bus idle" and "first
    // pending release".
    double earliest = std::numeric_limits<double>::infinity();
    for (double t : next_release) earliest = std::min(earliest, t);
    const double now = std::max(bus_free_at, earliest);

    // All messages released by `now` contend for the bus.
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < n; ++i) {
      if (next_release[i] <= now) pending.push_back(i);
    }

    std::vector<DataFrame> contenders;
    contenders.reserve(pending.size());
    for (std::size_t i : pending) {
      DataFrame f;
      f.id = messages_[i].id;
      f.payload.resize(messages_[i].payload_len);
      for (auto& b : f.payload) {
        b = static_cast<std::uint8_t>(rng_.below(256));
      }
      contenders.push_back(std::move(f));
    }

    const std::size_t winner_pos =
        (contenders.size() == 1) ? 0 : arbitrate(contenders).winner;
    const std::size_t msg_index = pending[winner_pos];
    DataFrame frame = std::move(contenders[winner_pos]);

    const double duration =
        static_cast<double>(wire_bit_count(frame) + 3) / bitrate_.value();
    // +3 bits of interframe space before the next SOF.
    out.push_back(Transmission{now, messages_[msg_index].node, std::move(frame)});
    bus_free_at = now + duration;

    // Losers stay pending (their release time is unchanged); the winner's
    // next instance releases on the absolute grid with fresh jitter.
    ++instance[msg_index];
    next_release[msg_index] =
        phase[msg_index] +
        static_cast<double>(instance[msg_index]) *
            messages_[msg_index].period_s +
        rng_.uniform() * messages_[msg_index].jitter_s;
  }
  return out;
}

}  // namespace canbus
