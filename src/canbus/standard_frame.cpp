#include "canbus/standard_frame.hpp"

#include <stdexcept>

#include "canbus/stuffing.hpp"

namespace canbus {
namespace {

void push_bits_msb_first(std::uint32_t value, int width, BitVector& out) {
  for (int i = width - 1; i >= 0; --i) out.push_back(((value >> i) & 1u) != 0);
}

std::uint32_t read_bits_msb_first(const BitVector& bits, units::BitIndex first,
                                  int width) {
  std::uint32_t v = 0;
  for (int i = 0; i < width; ++i) {
    const std::size_t at = (first + static_cast<std::size_t>(i)).value();
    v = (v << 1) | (bits[at] ? 1u : 0u);
  }
  return v;
}

BitVector build_stuffable_region(const StandardDataFrame& frame) {
  if (frame.id > 0x7FF) {
    throw std::invalid_argument("standard frame: id exceeds 11 bits");
  }
  if (frame.payload.size() > 8) {
    throw std::invalid_argument("standard frame: payload > 8 bytes");
  }
  BitVector bits;
  bits.reserve(32 + frame.payload.size() * 8 + 15);
  bits.push_back(false);                      // SOF
  push_bits_msb_first(frame.id, 11, bits);    // identifier
  bits.push_back(false);                      // RTR: data frame
  bits.push_back(false);                      // IDE: standard format
  bits.push_back(false);                      // r0
  push_bits_msb_first(static_cast<std::uint32_t>(frame.payload.size()), 4,
                      bits);                  // DLC
  for (std::uint8_t byte : frame.payload) push_bits_msb_first(byte, 8, bits);
  append_crc15(bits, bits);
  return bits;
}

void append_tail(BitVector& bits) {
  bits.push_back(true);   // CRC delimiter
  bits.push_back(false);  // ACK slot, asserted by receivers
  bits.push_back(true);   // ACK delimiter
  for (int i = 0; i < 7; ++i) bits.push_back(true);  // EOF
}

}  // namespace

BitVector build_unstuffed_bits(const StandardDataFrame& frame) {
  BitVector bits = build_stuffable_region(frame);
  append_tail(bits);
  return bits;
}

BitVector build_wire_bits(const StandardDataFrame& frame) {
  BitVector bits = stuff(build_stuffable_region(frame));
  append_tail(bits);
  return bits;
}

std::optional<StandardDataFrame> parse_standard_wire_bits(
    const BitVector& wire) {
  namespace fb = standard_frame_bits;
  BitVector unstuffed;
  unstuffed.reserve(wire.size());
  std::size_t run = 0;
  bool run_value = false;
  bool skip_next = false;
  std::size_t stuffable_len = 0;
  std::size_t wire_pos = 0;

  for (; wire_pos < wire.size(); ++wire_pos) {
    const Bit b = wire[wire_pos];
    if (skip_next) {
      if (b == run_value) return std::nullopt;
      skip_next = false;
      run_value = b;
      run = 1;
      continue;
    }
    if (run > 0 && b == run_value) {
      ++run;
    } else {
      run_value = b;
      run = 1;
    }
    unstuffed.push_back(b);
    if (run == 5) skip_next = true;

    if (stuffable_len == 0 && unstuffed.size() > (fb::kDlcFirst + 3).value()) {
      const std::uint32_t dlc =
          read_bits_msb_first(unstuffed, fb::kDlcFirst, 4);
      if (dlc > 8) return std::nullopt;
      stuffable_len = fb::kDataFirst.value() + 8 * dlc + 15;
    }
    if (stuffable_len != 0 && unstuffed.size() == stuffable_len) {
      ++wire_pos;
      break;
    }
  }
  if (stuffable_len == 0 || unstuffed.size() != stuffable_len) {
    return std::nullopt;
  }
  if (skip_next) {
    if (wire_pos >= wire.size() || wire[wire_pos] == run_value) {
      return std::nullopt;
    }
    ++wire_pos;
  }

  static constexpr Bit kTail[] = {true, false, true, true, true,
                                  true, true,  true, true, true};
  for (Bit expected : kTail) {
    if (wire_pos >= wire.size() || wire[wire_pos] != expected) {
      return std::nullopt;
    }
    ++wire_pos;
  }

  if (unstuffed[fb::kSof.value()]) return std::nullopt;
  if (unstuffed[fb::kRtr.value()]) return std::nullopt;           // data frame
  // IDE = 0 for a standard frame.
  if (unstuffed[fb::kFirstPostArbitration.value()]) return std::nullopt;

  const std::size_t crc_first = stuffable_len - 15;
  BitVector body(unstuffed.begin(),
                 unstuffed.begin() + static_cast<std::ptrdiff_t>(crc_first));
  const std::uint16_t expected_crc = crc15(body);
  const std::uint16_t got_crc =
      static_cast<std::uint16_t>(
          read_bits_msb_first(unstuffed, units::BitIndex{crc_first}, 15));
  if (expected_crc != got_crc) return std::nullopt;

  StandardDataFrame frame;
  frame.id = static_cast<std::uint16_t>(
      read_bits_msb_first(unstuffed, fb::kIdFirst, 11));
  const std::uint32_t dlc = read_bits_msb_first(unstuffed, fb::kDlcFirst, 4);
  frame.payload.resize(dlc);
  for (std::uint32_t i = 0; i < dlc; ++i) {
    frame.payload[i] = static_cast<std::uint8_t>(
        read_bits_msb_first(unstuffed, fb::kDataFirst + 8 * i, 8));
  }
  return frame;
}

}  // namespace canbus
