// CAN bit stuffing: after five consecutive bits of equal value a bit of
// opposite value is inserted (Section 2.1.1 of the paper).  Stuffing covers
// SOF through the CRC sequence; the CRC delimiter, ACK field and EOF are
// transmitted unstuffed.
#pragma once

#include <optional>

#include "canbus/crc15.hpp"

namespace canbus {

/// Inserts stuff bits into `bits`.  The input must start at SOF because the
/// run-length state begins there.
BitVector stuff(const BitVector& bits);

/// Removes stuff bits.  Returns std::nullopt on a stuff violation (six
/// consecutive equal bits), which on a real bus signals an error frame.
std::optional<BitVector> destuff(const BitVector& bits);

/// Number of stuff bits `stuff` would insert.
std::size_t count_stuff_bits(const BitVector& bits);

}  // namespace canbus
