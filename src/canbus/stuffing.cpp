#include "canbus/stuffing.hpp"

namespace canbus {

BitVector stuff(const BitVector& bits) {
  BitVector out;
  out.reserve(bits.size() + bits.size() / 5);
  std::size_t run = 0;
  bool run_value = false;
  for (Bit b : bits) {
    if (run > 0 && b == run_value) {
      ++run;
    } else {
      run_value = b;
      run = 1;
    }
    out.push_back(b);
    if (run == 5) {
      // Insert the complement; it starts a new run of length 1.
      out.push_back(!run_value);
      run_value = !run_value;
      run = 1;
    }
  }
  return out;
}

std::optional<BitVector> destuff(const BitVector& bits) {
  BitVector out;
  out.reserve(bits.size());
  std::size_t run = 0;
  bool run_value = false;
  bool skip_next = false;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const Bit b = bits[i];
    if (skip_next) {
      // The bit after a length-5 run must be the complement.
      if (b == run_value) return std::nullopt;
      skip_next = false;
      run_value = b;
      run = 1;
      continue;
    }
    if (run > 0 && b == run_value) {
      ++run;
    } else {
      run_value = b;
      run = 1;
    }
    out.push_back(b);
    if (run == 5) skip_next = true;
  }
  return out;
}

std::size_t count_stuff_bits(const BitVector& bits) {
  return stuff(bits).size() - bits.size();
}

}  // namespace canbus
