#include "canbus/j1939.hpp"

#include <sstream>
#include <stdexcept>

namespace canbus {

std::uint32_t J1939Id::pack() const {
  if (priority > 0x7) {
    throw std::invalid_argument("J1939Id::pack: priority exceeds 3 bits");
  }
  if (pgn > 0x3FFFF) {
    throw std::invalid_argument("J1939Id::pack: pgn exceeds 18 bits");
  }
  return (static_cast<std::uint32_t>(priority) << 26) | (pgn << 8) |
         source_address;
}

J1939Id J1939Id::unpack(std::uint32_t id29) {
  if (id29 > 0x1FFFFFFF) {
    throw std::invalid_argument("J1939Id::unpack: value exceeds 29 bits");
  }
  J1939Id id;
  id.priority = static_cast<std::uint8_t>((id29 >> 26) & 0x7);
  id.pgn = (id29 >> 8) & 0x3FFFF;
  id.source_address = static_cast<std::uint8_t>(id29 & 0xFF);
  return id;
}

std::string J1939Id::to_string() const {
  std::ostringstream os;
  os << "J1939{prio=" << static_cast<int>(priority) << ", pgn=" << pgn
     << ", sa=" << static_cast<int>(source_address) << "}";
  return os.str();
}

}  // namespace canbus
