#include "canbus/crc15.hpp"

namespace canbus {

std::uint16_t crc15(const BitVector& bits) {
  // Bit-serial LFSR as specified in the Bosch CAN 2.0 standard, section 3.
  std::uint16_t crc = 0;
  for (Bit b : bits) {
    const bool nxt = b ^ (((crc >> 14) & 1u) != 0);
    crc = static_cast<std::uint16_t>((crc << 1) & 0x7FFF);
    if (nxt) crc ^= 0x4599;
  }
  return crc;
}

void append_crc15(const BitVector& bits, BitVector& out) {
  const std::uint16_t crc = crc15(bits);
  for (int i = 14; i >= 0; --i) out.push_back(((crc >> i) & 1u) != 0);
}

}  // namespace canbus
