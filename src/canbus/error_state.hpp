// CAN fault confinement (Bosch CAN 2.0, section 8): transmit / receive
// error counters and the error-active -> error-passive -> bus-off state
// machine.
//
// The paper's threat model includes attacks that "induce faults to
// disable an ECU" (Section 1.1) — bus-off attacks work precisely by
// driving a victim's TEC over 255 through forced bit errors.  This module
// lets the simulator model such attacks and an IDS reason about them.
#pragma once

#include <cstdint>

namespace canbus {

/// Node fault-confinement states.
enum class ErrorState {
  kErrorActive,   // normal operation, sends active error flags
  kErrorPassive,  // TEC or REC > 127: passive error flags, suspend time
  kBusOff,        // TEC > 255: disconnected from the bus
};

const char* to_string(ErrorState state);

/// Transmit/receive error counters with the CAN 2.0 increment/decrement
/// rules and derived state.
class ErrorCounters {
 public:
  std::uint16_t tec() const { return tec_; }
  std::uint16_t rec() const { return rec_; }
  ErrorState state() const;

  /// Transmitter detected an error in its own frame: TEC += 8.
  void on_transmit_error();
  /// Receiver detected an error: REC += 1 (+8 when the node sent a
  /// dominant bit after its error flag, `primary` = true).
  void on_receive_error(bool primary = false);
  /// Successful transmission: TEC -= 1 (floor 0).
  void on_transmit_success();
  /// Successful reception: REC -= 1 (floor 0; values > 127 drop to the
  /// 119..127 band per the spec).
  void on_receive_success();

  /// Bus-off recovery after the required 128 occurrences of 11 recessive
  /// bits: both counters reset and the node rejoins error-active.
  void recover_from_bus_off();

  /// True when the node may transmit at all.
  bool can_transmit() const { return state() != ErrorState::kBusOff; }

 private:
  std::uint16_t tec_ = 0;
  std::uint16_t rec_ = 0;
  bool bus_off_ = false;
};

}  // namespace canbus
