// CAN 2.0B extended data frame construction and parsing (Fig 2.2 /
// Table 2.1).  The on-wire bitstream produced here is what the analog
// synthesizer converts to a voltage waveform, and what vProfile's edge-set
// extractor traverses bit-by-bit.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "canbus/crc15.hpp"
#include "canbus/j1939.hpp"

namespace canbus {

/// Payload container: up to 8 octets.
using Payload = std::vector<std::uint8_t>;

/// A CAN 2.0B extended data frame before physical-layer encoding.
struct DataFrame {
  J1939Id id;
  Payload payload;  // 0-8 bytes

  bool operator==(const DataFrame&) const = default;
};

/// Zero-based positions of fields within the *unstuffed* extended data
/// frame, SOF = bit 0 (as used by the paper's Algorithm 1).
namespace frame_bits {
inline constexpr std::size_t kSof = 0;
inline constexpr std::size_t kBaseIdFirst = 1;    // 11 bits: 1..11
inline constexpr std::size_t kSrr = 12;
inline constexpr std::size_t kIde = 13;
inline constexpr std::size_t kExtIdFirst = 14;    // 18 bits: 14..31
inline constexpr std::size_t kRtr = 32;
/// SA = last 8 bits of the 29-bit identifier = unstuffed bits 24..31.
inline constexpr std::size_t kSourceAddrFirst = 24;
inline constexpr std::size_t kSourceAddrLast = 31;
/// First bit after the arbitration field (reserved bit r1); the edge set
/// is taken at or after this point because arbitration bits are unstable.
inline constexpr std::size_t kFirstPostArbitration = 33;
inline constexpr std::size_t kDlcFirst = 35;      // 4 bits: 35..38
inline constexpr std::size_t kDataFirst = 39;
}  // namespace frame_bits

/// Builds the unstuffed logical bitstream of a data frame: SOF through EOF,
/// CRC computed over SOF..data.  Throws std::invalid_argument for payloads
/// longer than 8 bytes.
BitVector build_unstuffed_bits(const DataFrame& frame);

/// Builds the on-wire bitstream: stuffing applied from SOF through the CRC
/// sequence, followed by the unstuffed CRC delimiter, ACK slot (dominant,
/// as asserted by receivers of a valid frame), ACK delimiter and EOF.
BitVector build_wire_bits(const DataFrame& frame);

/// Parses an on-wire bitstream back into a frame.  Returns std::nullopt on
/// stuff violations, malformed fixed-form bits, or CRC mismatch.
std::optional<DataFrame> parse_wire_bits(const BitVector& wire);

/// Total number of on-wire bits of a frame (stuffed), excluding interframe
/// space.
std::size_t wire_bit_count(const DataFrame& frame);

}  // namespace canbus
