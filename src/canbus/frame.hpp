// CAN 2.0B extended data frame construction and parsing (Fig 2.2 /
// Table 2.1).  The on-wire bitstream produced here is what the analog
// synthesizer converts to a voltage waveform, and what vProfile's edge-set
// extractor traverses bit-by-bit.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "canbus/crc15.hpp"
#include "canbus/j1939.hpp"
#include "core/units.hpp"

namespace canbus {

/// Payload container: up to 8 octets.
using Payload = std::vector<std::uint8_t>;

/// A CAN 2.0B extended data frame before physical-layer encoding.
struct DataFrame {
  J1939Id id;
  Payload payload;  // 0-8 bytes

  bool operator==(const DataFrame&) const = default;
};

/// Zero-based positions of fields within the *unstuffed* extended data
/// frame, SOF = bit 0 (as used by the paper's Algorithm 1).  Typed as
/// units::BitIndex so a frame bit position can never be handed to an API
/// expecting a sample-grid index.
namespace frame_bits {
inline constexpr units::BitIndex kSof{0};
inline constexpr units::BitIndex kBaseIdFirst{1};    // 11 bits: 1..11
inline constexpr units::BitIndex kSrr{12};
inline constexpr units::BitIndex kIde{13};
inline constexpr units::BitIndex kExtIdFirst{14};    // 18 bits: 14..31
inline constexpr units::BitIndex kRtr{32};
/// SA = last 8 bits of the 29-bit identifier = unstuffed bits 24..31.
inline constexpr units::BitIndex kSourceAddrFirst{24};
inline constexpr units::BitIndex kSourceAddrLast{31};
/// First bit after the arbitration field (reserved bit r1); the edge set
/// is taken at or after this point because arbitration bits are unstable.
inline constexpr units::BitIndex kFirstPostArbitration{33};
inline constexpr units::BitIndex kDlcFirst{35};      // 4 bits: 35..38
inline constexpr units::BitIndex kDataFirst{39};
}  // namespace frame_bits

/// Builds the unstuffed logical bitstream of a data frame: SOF through EOF,
/// CRC computed over SOF..data.  Throws std::invalid_argument for payloads
/// longer than 8 bytes.
BitVector build_unstuffed_bits(const DataFrame& frame);

/// Builds the on-wire bitstream: stuffing applied from SOF through the CRC
/// sequence, followed by the unstuffed CRC delimiter, ACK slot (dominant,
/// as asserted by receivers of a valid frame), ACK delimiter and EOF.
BitVector build_wire_bits(const DataFrame& frame);

/// Parses an on-wire bitstream back into a frame.  Returns std::nullopt on
/// stuff violations, malformed fixed-form bits, or CRC mismatch.
std::optional<DataFrame> parse_wire_bits(const BitVector& wire);

/// Total number of on-wire bits of a frame (stuffed), excluding interframe
/// space.
std::size_t wire_bit_count(const DataFrame& frame);

}  // namespace canbus
