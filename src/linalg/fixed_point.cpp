#include "linalg/fixed_point.hpp"

#include <algorithm>
#include <cmath>

namespace linalg::fixed {
namespace {

/// Round-to-nearest on a power-of-two grid, saturated to +/-limit.
std::int64_t round_sat(double x, std::int64_t limit) {
  const double r = std::nearbyint(x);
  if (r >= static_cast<double>(limit)) return limit;
  if (r <= static_cast<double>(-limit)) return -limit;
  return static_cast<std::int64_t>(r);
}

}  // namespace

double choose_feature_step(double max_abs) {
  double step = 1.0;
  // |2 * max_abs / step| must fit the 12-bit magnitude grid (<= 4096).
  while (2.0 * max_abs / step > 4096.0) step *= 2.0;
  return step;
}

std::int16_t quantize_feature(double x, double step) {
  return static_cast<std::int16_t>(round_sat(x / step, kFeatMax));
}

ClusterQuant quantize_cluster(const double* mean, const double* inv_cov,
                              std::size_t dim, double step) {
  ClusterQuant cq;
  cq.dim = dim;
  cq.step = step;
  cq.mu_fx.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    cq.mu_fx[i] = quantize_feature(mean[i], step);
  }
  if (inv_cov == nullptr) return cq;  // Euclidean: A = I, exact

  double max_abs_a = 0.0;
  for (std::size_t i = 0; i < dim * dim; ++i) {
    cq.s1 += std::abs(inv_cov[i]);
    max_abs_a = std::max(max_abs_a, std::abs(inv_cov[i]));
  }
  // Overflow budget: |q_fx| <= max|A_fx| * (sum|d_i|)^2 with
  // |d_i| <= 2 * kFeatMax, so cap max|A_fx| at 2^62 / (dim * 2*kFeatMax)^2
  // and pick the largest power-of-two a_scale under it.
  const double sum_d = static_cast<double>(dim) * 2.0 *
                       static_cast<double>(kFeatMax);
  const double cap = std::ldexp(1.0, 62) / (sum_d * sum_d);
  double a_scale = 1.0;
  if (max_abs_a > 0.0) {
    while (max_abs_a * a_scale * 2.0 <= cap) a_scale *= 2.0;
    while (max_abs_a * a_scale > cap && a_scale > std::ldexp(1.0, -62)) {
      a_scale *= 0.5;
    }
  }
  cq.a_scale = a_scale;
  cq.a_fx.resize(dim * dim);
  for (std::size_t i = 0; i < dim * dim; ++i) {
    cq.a_fx[i] = static_cast<std::int32_t>(
        round_sat(inv_cov[i] * a_scale, (std::int64_t{1} << 31) - 1));
  }
  return cq;
}

double ClusterQuant::distance_error_bound(double radius) const {
  // DESIGN.md "Fixed-point error bound": with per-component feature error
  // eps = step (one step/2 rounding each for x and mu), matrix error
  // delta_A = 0.5 / a_scale, and |d_i| <= R:
  //   mahalanobis:  |q_hat - q| <= eps*(2R + eps)*S1 + (R + eps)^2*dim^2*dA
  //   euclidean:    |q_hat - q| <= eps*(2R + eps)*dim
  //   |dist_hat - dist| <= sqrt(|q_hat - q|)
  const double eps = step;
  const double r = std::max(0.0, radius);
  const double n = static_cast<double>(dim);
  double dq;
  if (a_fx.empty()) {
    dq = eps * (2.0 * r + eps) * n;
  } else {
    const double delta_a = 0.5 / a_scale;
    dq = eps * (2.0 * r + eps) * s1 + (r + eps) * (r + eps) * n * n * delta_a;
  }
  return std::sqrt(dq);
}

// vprofile-lint: hot
void euclidean_fixed(const FixedBatchView& batch, const ClusterQuant& cq,
                     double* out, std::size_t begin, std::size_t end) {
  for (std::size_t e = begin; e < end; ++e) {
    std::int64_t q = 0;
    for (std::size_t i = 0; i < batch.dim; ++i) {
      const std::int64_t d =
          std::int64_t{batch.soa[i * batch.stride + e]} -
          std::int64_t{cq.mu_fx[i]};
      q += d * d;
    }
    out[e] = cq.step * std::sqrt(static_cast<double>(q));
  }
}

// vprofile-lint: hot
void mahalanobis_fixed(const FixedBatchView& batch, const ClusterQuant& cq,
                       double* out, std::size_t begin, std::size_t end) {
  const std::size_t dim = batch.dim;
  const double rescale = cq.step * cq.step / cq.a_scale;
  for (std::size_t e = begin; e < end; ++e) {
    std::int64_t q = 0;
    for (std::size_t r = 0; r < dim; ++r) {
      const std::int64_t dr =
          std::int64_t{batch.soa[r * batch.stride + e]} -
          std::int64_t{cq.mu_fx[r]};
      std::int64_t s = 0;
      const std::int32_t* row = cq.a_fx.data() + r * dim;
      for (std::size_t c = 0; c < dim; ++c) {
        const std::int64_t dc =
            std::int64_t{batch.soa[c * batch.stride + e]} -
            std::int64_t{cq.mu_fx[c]};
        s += std::int64_t{row[c]} * dc;
      }
      q += dr * s;
    }
    out[e] = std::sqrt(std::max(0.0, static_cast<double>(q) * rescale));
  }
}

}  // namespace linalg::fixed
