#include "linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

namespace linalg {

std::optional<Cholesky> Cholesky::factorize(const Matrix& a,
                                            double pivot_tol) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("Cholesky::factorize: matrix must be square");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  // Scale the pivot tolerance to the matrix magnitude so that "singular"
  // means the same thing for volt-scale and ADC-code-scale data.
  const double scale =
      std::max(1.0, std::fabs(a.trace()) / static_cast<double>(n));
  const double tol = pivot_tol * scale;
  for (std::size_t j = 0; j < n; ++j) {
    double d = a.at(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l.at(j, k) * l.at(j, k);
    if (d <= tol) return std::nullopt;
    const double ljj = std::sqrt(d);
    l.at(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l.at(i, k) * l.at(j, k);
      l.at(i, j) = s / ljj;
    }
  }
  return Cholesky(std::move(l));
}

Vector Cholesky::solve(const Vector& b) const {
  const std::size_t n = dim();
  if (b.size() != n) {
    throw std::invalid_argument("Cholesky::solve: size mismatch");
  }
  // Forward substitution: L y = b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_.at(i, k) * y[k];
    y[i] = s / l_.at(i, i);
  }
  // Back substitution: L^T x = y.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_.at(k, ii) * x[k];
    x[ii] = s / l_.at(ii, ii);
  }
  return x;
}

Matrix Cholesky::inverse() const {
  const std::size_t n = dim();
  Matrix inv(n, n);
  Vector e(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    Vector col = solve(e);
    for (std::size_t r = 0; r < n; ++r) inv.at(r, c) = col[r];
    e[c] = 0.0;
  }
  return inv;
}

double Cholesky::log_determinant() const {
  double s = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) s += std::log(l_.at(i, i));
  return 2.0 * s;
}

double Cholesky::quadratic_form(const Vector& x) const {
  const std::size_t n = dim();
  if (x.size() != n) {
    throw std::invalid_argument("Cholesky::quadratic_form: size mismatch");
  }
  // x^T A^-1 x = ||L^-1 x||^2, one forward substitution.
  double acc = 0.0;
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = x[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_.at(i, k) * y[k];
    y[i] = s / l_.at(i, i);
    acc += y[i] * y[i];
  }
  return acc;
}

std::optional<RidgedCholesky> factorize_with_ridge(const Matrix& a,
                                                   double initial_ridge,
                                                   int max_attempts) {
  double lambda = 0.0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Matrix m = a;
    if (lambda > 0.0) m.add_ridge(lambda);
    if (auto f = Cholesky::factorize(m)) {
      return RidgedCholesky{std::move(*f), lambda};
    }
    // First retry replaces the exact sentinel 0.0, later ones scale it.
    // vprofile-lint: allow(float-eq)
    lambda = (lambda == 0.0) ? initial_ridge : lambda * 10.0;
  }
  return std::nullopt;
}

}  // namespace linalg
