// Runtime backend selection for the batched scoring kernels.
//
// All SIMD in this codebase lives behind this boundary: callers name a
// Backend (usually kAuto) and the dispatcher resolves it against the CPU
// and the VPROFILE_FORCE_SCALAR escape hatch.  The scalar kernels are the
// bit-identical oracle — the AVX2 kernels vectorize across *edges* (one
// edge per lane) and perform, per lane, exactly the operation sequence of
// the scalar code, so a resolved backend never changes a verdict, only
// the wall clock.  CI runs both resolutions (see the runtime-dispatch job)
// and tests/test_simd_differential.cpp holds the equivalence.
#pragma once

namespace linalg::simd {

/// Scoring backend.  kAuto resolves at runtime; the rest request a
/// specific implementation.
enum class Backend {
  kAuto,    // kAvx2 when the CPU supports it (and scalar is not forced)
  kScalar,  // portable reference kernels — the bit-identity oracle
  kAvx2,    // 4-wide double kernels; falls back to kScalar off-AVX2 CPUs
  kFixed,   // int16 fixed-point feature path (12-bit ADC mirror)
};

const char* to_string(Backend backend);

/// True when the executing CPU supports AVX2.
bool cpu_has_avx2();

/// True when float-SIMD dispatch is pinned to the scalar kernels: the
/// VPROFILE_FORCE_SCALAR environment variable is set to anything but "0",
/// or a test installed an override.  Does not affect kFixed — fixed point
/// is an explicitly requested quantized backend, not a dispatch choice.
bool force_scalar();

/// Test hook: overrides (or, with -1, un-overrides) force_scalar()
/// regardless of the environment.  Lets one process compare both dispatch
/// paths; not thread-safe against concurrent resolve() calls.
void set_force_scalar_override(int forced);

/// Resolves a requested backend to the one that will actually run:
/// kAuto/kAvx2 become kScalar when forced or unsupported, kScalar and
/// kFixed are returned unchanged.  Never returns kAuto.
Backend resolve(Backend requested);

}  // namespace linalg::simd
