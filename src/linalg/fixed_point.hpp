// Int16 fixed-point scoring path, mirroring the paper's 12-bit ADC domain.
//
// Deployments on Cortex-M/A-class monitors (HIVIDS-style static embedded
// builds) cannot afford double-precision Mahalanobis per frame.  This path
// quantizes features to int16 on a power-of-two grid sized so a 12-bit ADC
// range maps 1:1 (step 1 for Vehicle B's 12-bit digitizer, step 16 for
// Vehicle A's 16-bit card), quantizes the inverse covariance to int32 on a
// per-cluster power-of-two scale, and evaluates the quadratic form in
// exact int64 arithmetic — the only floating-point operations left are the
// final rescale and sqrt.
//
// The divergence from the double-precision oracle is bounded, not zero:
// distance_error_bound() computes the worst-case bound derived in
// DESIGN.md ("Fixed-point error bound"), and the differential harness
// asserts the empirical error stays inside it and that verdicts only ever
// flip when the oracle's own decision margin is smaller than the bound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace linalg::fixed {

/// Largest representable quantized feature magnitude.  With features and
/// means both clamped to [-kFeatMax, kFeatMax], a difference fits int16
/// and (dim * 2 * kFeatMax)^2 * max|A_fx| stays inside int64 (the scale
/// chooser enforces the last part).
inline constexpr std::int64_t kFeatMax = 8191;

/// Smallest power-of-two step that maps [-2*max_abs, 2*max_abs] onto the
/// 12-bit magnitude grid (|x/step| <= 4096): the "12-bit ADC mirror".
/// Returns at least 1 — a native 12-bit digitizer quantizes losslessly.
double choose_feature_step(double max_abs);

/// Quantizes one feature: round(x / step), saturated to +/-kFeatMax.
std::int16_t quantize_feature(double x, double step);

/// Read-only view of an int16 SoA feature batch (layout contract matches
/// simd::BatchView: soa[i * stride + e]).
struct FixedBatchView {
  const std::int16_t* soa = nullptr;
  std::size_t stride = 0;
  std::size_t count = 0;
  std::size_t dim = 0;
};

/// One cluster's quantized scoring operands.
struct ClusterQuant {
  std::vector<std::int16_t> mu_fx;  // round(mean / step)
  std::vector<std::int32_t> a_fx;   // round(inv_cov * a_scale); empty =>
                                    // Euclidean (A = I implicitly)
  double step = 1.0;                // feature grid (power of two)
  double a_scale = 1.0;             // matrix grid (power of two)
  double s1 = 0.0;                  // sum |inv_cov_ij| (for the bound)
  std::size_t dim = 0;

  /// Worst-case |fixed distance - oracle distance| for any query whose
  /// per-component deviation from the mean is at most `radius` (in the
  /// original feature units) and whose features stay inside the
  /// unsaturated grid.  Derivation in DESIGN.md.
  double distance_error_bound(double radius) const;
};

/// Builds one cluster's quantized operands.  `inv_cov` is row-major
/// dim x dim, or nullptr for Euclidean clusters.  `step` must come from
/// choose_feature_step so every cluster of a model shares one feature
/// grid (features are quantized once per batch, not once per cluster).
ClusterQuant quantize_cluster(const double* mean, const double* inv_cov,
                              std::size_t dim, double step);

/// out[e] = fixed-point Euclidean distance for e in [begin, end).
void euclidean_fixed(const FixedBatchView& batch, const ClusterQuant& cq,
                     double* out, std::size_t begin, std::size_t end);

/// out[e] = fixed-point Mahalanobis distance for e in [begin, end).
void mahalanobis_fixed(const FixedBatchView& batch, const ClusterQuant& cq,
                       double* out, std::size_t begin, std::size_t end);

}  // namespace linalg::fixed
