#include "linalg/vector_ops.hpp"

#include <cmath>
#include <stdexcept>

namespace linalg {
namespace {

void require_same_size(const Vector& a, const Vector& b, const char* what) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(std::string(what) + ": size mismatch");
  }
}

}  // namespace

Vector add(const Vector& a, const Vector& b) {
  require_same_size(a, b, "linalg::add");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector subtract(const Vector& a, const Vector& b) {
  require_same_size(a, b, "linalg::subtract");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector scale(const Vector& a, double k) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * k;
  return out;
}

double dot(const Vector& a, const Vector& b) {
  require_same_size(a, b, "linalg::dot");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(const Vector& a) { return std::sqrt(dot(a, a)); }

double euclidean_distance(const Vector& a, const Vector& b) {
  require_same_size(a, b, "linalg::euclidean_distance");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

Vector mean_of(const std::vector<Vector>& xs) {
  if (xs.empty()) throw std::invalid_argument("linalg::mean_of: empty input");
  Vector m(xs.front().size(), 0.0);
  for (const Vector& x : xs) {
    require_same_size(m, x, "linalg::mean_of");
    for (std::size_t i = 0; i < m.size(); ++i) m[i] += x[i];
  }
  const double inv = 1.0 / static_cast<double>(xs.size());
  for (double& v : m) v *= inv;
  return m;
}

}  // namespace linalg
