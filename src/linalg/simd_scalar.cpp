// Scalar reference kernels — the bit-identity oracle every other backend
// is held against.  The loops mirror linalg::euclidean_distance and
// linalg::mahalanobis_distance_inv operation-for-operation; this file is
// built with -ffp-contract=off so the compiler cannot fuse a*b+c into an
// FMA and silently change the rounding the oracle is defined by.
#include "linalg/simd_kernels.hpp"

#include <algorithm>
#include <cmath>

namespace linalg::simd {

// vprofile-lint: hot
void euclidean_scalar(const BatchView& batch, const double* mu, double* out,
                      std::size_t begin, std::size_t end) {
  for (std::size_t e = begin; e < end; ++e) {
    double s = 0.0;
    for (std::size_t i = 0; i < batch.dim; ++i) {
      const double d = batch.soa[i * batch.stride + e] - mu[i];
      s += d * d;
    }
    out[e] = std::sqrt(s);
  }
}

// vprofile-lint: hot
void mahalanobis_scalar(const BatchView& batch, const double* mu,
                        const double* inv_cov, double* dscratch, double* out,
                        std::size_t begin, std::size_t end) {
  const std::size_t dim = batch.dim;
  for (std::size_t e = begin; e < end; ++e) {
    for (std::size_t i = 0; i < dim; ++i) {
      dscratch[i] = batch.soa[i * batch.stride + e] - mu[i];
    }
    // Same association as mahalanobis_distance_inv: each row's inner
    // product completes (c ascending) before it joins the quadratic form
    // (r ascending).
    double q = 0.0;
    for (std::size_t r = 0; r < dim; ++r) {
      double s = 0.0;
      const double* row = inv_cov + r * dim;
      for (std::size_t c = 0; c < dim; ++c) s += row[c] * dscratch[c];
      q += dscratch[r] * s;
    }
    out[e] = std::sqrt(std::max(0.0, q));
  }
}

}  // namespace linalg::simd
