// Cholesky factorization of symmetric positive-definite matrices.
//
// Covariance matrices of edge sets are small (tens of dimensions) and
// symmetric; Cholesky gives the cheapest solve for Mahalanobis distances
// and a clean singularity signal — the paper hit singular covariances at
// <= 10-bit resolution (Section 4.3) and we surface the same condition.
#pragma once

#include <optional>

#include "linalg/matrix.hpp"

namespace linalg {

/// Lower-triangular Cholesky factor L with A = L * L^T.
class Cholesky {
 public:
  /// Factorizes `a`; returns std::nullopt when the matrix is not positive
  /// definite (within `pivot_tol` of singular), mirroring the paper's
  /// "singular covariance matrix" failure mode.  Throws on a non-square
  /// input.
  static std::optional<Cholesky> factorize(const Matrix& a,
                                           double pivot_tol = 1e-12);

  std::size_t dim() const { return l_.rows(); }
  const Matrix& lower() const { return l_; }

  /// Solves A x = b.
  Vector solve(const Vector& b) const;
  /// Full inverse A^-1 (needed by the online updater, which maintains the
  /// inverse incrementally afterwards).
  Matrix inverse() const;
  /// log(det(A)) = 2 * sum(log(L_ii)).
  double log_determinant() const;
  /// Quadratic form x^T A^-1 x computed via one triangular solve.
  double quadratic_form(const Vector& x) const;

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

/// Factorizes with escalating ridge regularization: tries lambda = 0, then
/// `initial_ridge` scaled by 10 each attempt, up to `max_attempts`.
/// Returns the factorization and the lambda that succeeded, or std::nullopt
/// if every attempt failed.  Mirrors what a deployment must do when sensor
/// quantization collapses the sample variance.
struct RidgedCholesky {
  Cholesky factor;
  double ridge = 0.0;
};
std::optional<RidgedCholesky> factorize_with_ridge(const Matrix& a,
                                                   double initial_ridge,
                                                   int max_attempts = 6);

}  // namespace linalg
