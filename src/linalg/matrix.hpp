// Dense row-major matrix sized for edge-set covariances (tens of rows).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace linalg {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);
  /// Diagonal matrix from a vector.
  static Matrix diagonal(const Vector& d);
  /// Outer product a * b^T.
  static Matrix outer(const Vector& a, const Vector& b);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Raw row-major storage (for serialization).
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  Matrix transpose() const;
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(const Matrix& other) const;
  Matrix operator*(double k) const;
  Vector operator*(const Vector& v) const;

  /// Adds `lambda` to every diagonal element (ridge regularization).
  void add_ridge(double lambda);

  /// Maximum absolute element difference; throws on shape mismatch.
  double max_abs_diff(const Matrix& other) const;
  /// True when the matrix equals its transpose within `tol`.
  bool is_symmetric(double tol = 1e-9) const;
  double trace() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace linalg
