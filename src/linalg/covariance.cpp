#include "linalg/covariance.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/cholesky.hpp"

namespace linalg {

CovarianceAccumulator::CovarianceAccumulator(std::size_t dim)
    : dim_(dim), mean_(dim, 0.0), m2_(dim, dim) {
  if (dim == 0) {
    throw std::invalid_argument("CovarianceAccumulator: dim must be > 0");
  }
}

void CovarianceAccumulator::add(const Vector& x) {
  if (x.size() != dim_) {
    throw std::invalid_argument("CovarianceAccumulator::add: size mismatch");
  }
  ++n_;
  // Welford-style: delta against the old mean, delta2 against the new.
  Vector delta = subtract(x, mean_);
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < dim_; ++i) mean_[i] += delta[i] * inv_n;
  Vector delta2 = subtract(x, mean_);
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) {
      m2_.at(i, j) += delta[i] * delta2[j];
    }
  }
}

Matrix CovarianceAccumulator::covariance() const {
  if (n_ < 2) {
    throw std::logic_error(
        "CovarianceAccumulator::covariance: need >= 2 observations");
  }
  return m2_ * (1.0 / static_cast<double>(n_));
}

IncrementalCovariance::IncrementalCovariance(Vector mean, Matrix covariance,
                                             Matrix inverse, std::size_t count)
    : n_(count),
      mean_(std::move(mean)),
      cov_(std::move(covariance)),
      inv_(std::move(inverse)) {
  const std::size_t d = mean_.size();
  if (d == 0 || cov_.rows() != d || cov_.cols() != d || inv_.rows() != d ||
      inv_.cols() != d) {
    throw std::invalid_argument("IncrementalCovariance: shape mismatch");
  }
  if (count < 2) {
    throw std::invalid_argument("IncrementalCovariance: count must be >= 2");
  }
}

void IncrementalCovariance::update(const Vector& x) {
  const std::size_t d = mean_.size();
  if (x.size() != d) {
    throw std::invalid_argument("IncrementalCovariance::update: size");
  }
  const double n_prev = static_cast<double>(n_);
  ++n_;
  const double n_new = static_cast<double>(n_);

  // Mean update: mu_n = mu_{n-1} + (x - mu_{n-1}) / n.
  Vector delta_old = subtract(x, mean_);  // x - mu_{n-1}
  for (std::size_t i = 0; i < d; ++i) mean_[i] += delta_old[i] / n_new;
  Vector delta_new = subtract(x, mean_);  // x - mu_n

  // Covariance (Eq 5.1): Sigma_n = (delta_old delta_new^T
  //                                 + (n-1) Sigma_{n-1}) / n.
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      cov_.at(i, j) =
          (delta_old[i] * delta_new[j] + n_prev * cov_.at(i, j)) / n_new;
    }
  }

  // Inverse update.  Sigma_n = (n-1)/n * Sigma_{n-1} + (1/n) delta_old
  // delta_new^T, so first rescale the inverse of the scaled old matrix,
  // then apply one Sherman-Morrison correction for the rank-1 term.
  const double shrink = n_prev / n_new;   // Sigma' = shrink * Sigma_{n-1}
  Matrix inv_scaled = inv_ * (1.0 / shrink);
  Vector u = scale(delta_old, 1.0 / n_new);
  if (auto updated = sherman_morrison(inv_scaled, u, delta_new)) {
    inv_ = std::move(*updated);
  } else {
    // Degenerate rank-1 update (numerically singular); fall back to a full
    // refactorization so the state stays consistent.
    auto chol = Cholesky::factorize(cov_);
    if (!chol) {
      throw std::runtime_error(
          "IncrementalCovariance::update: covariance became singular");
    }
    inv_ = chol->inverse();
  }
}

std::optional<Matrix> sherman_morrison(const Matrix& a_inv, const Vector& u,
                                       const Vector& v) {
  const std::size_t d = a_inv.rows();
  if (a_inv.cols() != d || u.size() != d || v.size() != d) {
    throw std::invalid_argument("sherman_morrison: shape mismatch");
  }
  Vector ainv_u = a_inv * u;
  // v^T A^-1 (row vector) = (A^-T v)^T; compute directly.
  Vector vt_ainv(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < d; ++i) s += v[i] * a_inv.at(i, j);
    vt_ainv[j] = s;
  }
  const double denom = 1.0 + dot(v, ainv_u);
  if (std::fabs(denom) < 1e-12) return std::nullopt;
  Matrix out = a_inv;
  const double inv_denom = 1.0 / denom;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      out.at(i, j) -= ainv_u[i] * vt_ainv[j] * inv_denom;
    }
  }
  return out;
}

}  // namespace linalg
