#include "linalg/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace linalg {
namespace {

void require_same_shape(const Matrix& a, const Matrix& b, const char* what) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch");
  }
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("Matrix: dimensions must be positive");
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m.at(i, i) = d[i];
  return m;
}

Matrix Matrix::outer(const Vector& a, const Vector& b) {
  Matrix m(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) m.at(i, j) = a[i] * b[j];
  }
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

Matrix Matrix::operator+(const Matrix& other) const {
  require_same_shape(*this, other, "Matrix::operator+");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  require_same_shape(*this, other, "Matrix::operator-");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("Matrix::operator*: inner dimension mismatch");
  }
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(r, k);
      // Exact-zero skip: sparse rows contribute nothing; any nonzero,
      // however small, must still be accumulated.
      // vprofile-lint: allow(float-eq)
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out.at(r, c) += a * other.at(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::operator*(double k) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= k;
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  if (cols_ != v.size()) {
    throw std::invalid_argument("Matrix::operator*(Vector): size mismatch");
  }
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += at(r, c) * v[c];
    out[r] = s;
  }
  return out;
}

void Matrix::add_ridge(double lambda) {
  if (rows_ != cols_) {
    throw std::logic_error("Matrix::add_ridge: matrix must be square");
  }
  for (std::size_t i = 0; i < rows_; ++i) at(i, i) += lambda;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  require_same_shape(*this, other, "Matrix::max_abs_diff");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

bool Matrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r + 1; c < cols_; ++c) {
      if (std::fabs(at(r, c) - at(c, r)) > tol) return false;
    }
  }
  return true;
}

double Matrix::trace() const {
  if (rows_ != cols_) throw std::logic_error("Matrix::trace: square only");
  double t = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) t += at(i, i);
  return t;
}

}  // namespace linalg
