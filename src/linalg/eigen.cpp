#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace linalg {

EigenDecomposition jacobi_eigen(const Matrix& input, double sym_tol,
                                int max_sweeps) {
  if (input.rows() != input.cols()) {
    throw std::invalid_argument("jacobi_eigen: matrix must be square");
  }
  // Symmetry tolerance scales with magnitude.
  const double scale =
      std::max(1.0, std::fabs(input.trace()) /
                        static_cast<double>(input.rows()));
  if (!input.is_symmetric(sym_tol * scale)) {
    throw std::invalid_argument("jacobi_eigen: matrix must be symmetric");
  }

  const std::size_t n = input.rows();
  Matrix a = input;
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a.at(p, q) * a.at(p, q);
    }
    if (off < 1e-24 * scale * scale) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a.at(p, q);
        if (std::fabs(apq) < 1e-30) continue;
        const double app = a.at(p, p);
        const double aqq = a.at(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a.at(k, p);
          const double akq = a.at(k, q);
          a.at(k, p) = c * akp - s * akq;
          a.at(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a.at(p, k);
          const double aqk = a.at(q, k);
          a.at(p, k) = c * apk - s * aqk;
          a.at(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v.at(k, p);
          const double vkq = v.at(k, q);
          v.at(k, p) = c * vkp - s * vkq;
          v.at(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort by descending eigenvalue, permuting eigenvector columns to match.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return a.at(i, i) > a.at(j, j);
  });

  EigenDecomposition out{Vector(n), Matrix(n, n)};
  for (std::size_t c = 0; c < n; ++c) {
    out.values[c] = a.at(order[c], order[c]);
    for (std::size_t r = 0; r < n; ++r) {
      out.vectors.at(r, c) = v.at(r, order[c]);
    }
  }
  return out;
}

}  // namespace linalg
