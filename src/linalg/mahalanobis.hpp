// Mahalanobis distance (paper Eq 2.2), the metric at the heart of vProfile.
#pragma once

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace linalg {

/// sqrt((x - mu)^T Sigma^-1 (x - mu)) using a precomputed Cholesky factor of
/// Sigma.  Preferred in the detection hot path: one triangular solve, no
/// explicit inverse.
double mahalanobis_distance(const Vector& x, const Vector& mu,
                            const Cholesky& sigma_factor);

/// Same distance using an explicit inverse covariance (the representation
/// the online updater maintains).
double mahalanobis_distance_inv(const Vector& x, const Vector& mu,
                                const Matrix& sigma_inverse);

}  // namespace linalg
