// Covariance estimation: batch accumulation for training (Algorithm 2) and
// the incremental update of Eq 5.1 for the online model updater
// (Algorithm 4), including a Sherman-Morrison rank-1 update that keeps the
// inverse covariance current without refactorizing.
#pragma once

#include <cstddef>
#include <optional>

#include "linalg/matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace linalg {

/// Accumulates mean and covariance over a batch of equal-length vectors.
///
/// Uses the same population normalization (divide by n) as the paper's
/// Eq 5.1 so that batch and incremental estimates agree exactly.
class CovarianceAccumulator {
 public:
  explicit CovarianceAccumulator(std::size_t dim);

  void add(const Vector& x);

  std::size_t count() const { return n_; }
  std::size_t dim() const { return dim_; }
  const Vector& mean() const { return mean_; }
  /// Population covariance (divides by n); throws std::logic_error with
  /// fewer than 2 observations.
  Matrix covariance() const;

 private:
  std::size_t dim_;
  std::size_t n_ = 0;
  Vector mean_;
  Matrix m2_;  // sum of outer products of deviations (Welford style)
};

/// Maintains mean, covariance, and inverse covariance under one-at-a-time
/// updates (paper Eq 5.1 / Algorithm 4).
///
/// The covariance update is the textbook online form
///   Sigma_n = ((x - mu_{n-1})(x - mu_n)^T + (n-1) Sigma_{n-1}) / n
/// which is what Eq 5.1 expresses element-wise.  The inverse is maintained
/// with two Sherman-Morrison rank-1 corrections so detection never pays a
/// refactorization.
class IncrementalCovariance {
 public:
  /// Seeds the state from an already-trained cluster.  `inverse` must be
  /// the inverse of `covariance`; `count` the number of edge sets that
  /// produced them.  Throws on inconsistent shapes or count < 2.
  IncrementalCovariance(Vector mean, Matrix covariance, Matrix inverse,
                        std::size_t count);

  /// Folds one new observation into the mean, covariance and inverse.
  void update(const Vector& x);

  std::size_t count() const { return n_; }
  const Vector& mean() const { return mean_; }
  const Matrix& covariance() const { return cov_; }
  const Matrix& inverse() const { return inv_; }

 private:
  std::size_t n_;
  Vector mean_;
  Matrix cov_;
  Matrix inv_;
};

/// Sherman-Morrison: (A + u v^T)^-1 given A^-1.  Returns std::nullopt when
/// the update is singular (1 + v^T A^-1 u ~= 0).
std::optional<Matrix> sherman_morrison(const Matrix& a_inv, const Vector& u,
                                       const Vector& v);

}  // namespace linalg
