// Batched distance kernels over structure-of-arrays feature batches.
//
// Layout contract: a batch of `count` edge sets of dimension `dim` is
// stored transposed, soa[i * stride + e] = feature i of edge e, with
// stride >= count (the scorer pads stride to a multiple of the SIMD width
// so vector loads never run off the row).  The kernels score a half-open
// edge range [begin, end) so the dispatcher can hand the 4-aligned body to
// AVX2 and the remainder to the scalar kernel.
//
// Bit-identity contract: for every edge, the scalar kernels perform the
// exact floating-point operation sequence of the one-at-a-time reference
// (linalg::euclidean_distance / mahalanobis_distance_inv): left-to-right
// accumulation, no reassociation, no FMA contraction (these translation
// units build with -ffp-contract=off).  The AVX2 kernels run the same
// sequence with one edge per lane, so every backend produces bit-identical
// doubles.  tests/test_simd_differential.cpp enforces this.
#pragma once

#include <cstddef>

namespace linalg::simd {

/// Read-only view of one SoA feature batch.
struct BatchView {
  const double* soa = nullptr;  // soa[i * stride + e]
  std::size_t stride = 0;       // >= count, multiple of the SIMD width
  std::size_t count = 0;        // edges in the batch
  std::size_t dim = 0;          // features per edge
};

/// out[e] = sqrt(sum_i (x_e[i] - mu[i])^2) for e in [begin, end).
void euclidean_scalar(const BatchView& batch, const double* mu, double* out,
                      std::size_t begin, std::size_t end);

/// Mahalanobis distance against (mu, inv_cov) for e in [begin, end):
/// d = x_e - mu; sd_r = sum_c inv_cov[r][c] * d_c; q = sum_r d_r * sd_r;
/// out[e] = sqrt(max(0, q)).  `dscratch` must hold >= dim doubles.
void mahalanobis_scalar(const BatchView& batch, const double* mu,
                        const double* inv_cov, double* dscratch, double* out,
                        std::size_t begin, std::size_t end);

/// AVX2 variants; [begin, end) must be 4-aligned in length and begin.
/// `dscratch` must hold >= dim * 16 doubles (the kernels process up to
/// four quads per pass where the range allows it).  Only call when
/// simd::resolve(...) chose Backend::kAvx2 — the implementations are
/// compiled with -mavx2 and must not run on CPUs without it.
void euclidean_avx2(const BatchView& batch, const double* mu, double* out,
                    std::size_t begin, std::size_t end);
void mahalanobis_avx2(const BatchView& batch, const double* mu,
                      const double* inv_cov, double* dscratch, double* out,
                      std::size_t begin, std::size_t end);

}  // namespace linalg::simd
