#include "linalg/simd_dispatch.hpp"

#include <cstdlib>
#include <cstring>

namespace linalg::simd {
namespace {

/// -1 = no override, 0/1 = overridden value (tests compare both dispatch
/// paths in one process through this).
int g_force_override = -1;

bool env_force_scalar() {
  // Read exactly once per process (static init in force_scalar), before
  // any frame is scored: a CI knob, not steady-state entropy.
  // vprofile-lint: allow(hot-path-purity)
  const char* v = std::getenv("VPROFILE_FORCE_SCALAR");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

}  // namespace

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kAuto: return "auto";
    case Backend::kScalar: return "scalar";
    case Backend::kAvx2: return "avx2";
    case Backend::kFixed: return "fixed";
  }
  return "unknown";
}

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool force_scalar() {
  if (g_force_override >= 0) return g_force_override != 0;
  // Read once: the env var is a process-level CI knob, not a live toggle.
  static const bool forced = env_force_scalar();
  return forced;
}

void set_force_scalar_override(int forced) { g_force_override = forced; }

// vprofile-lint: hot
Backend resolve(Backend requested) {
  switch (requested) {
    case Backend::kScalar:
    case Backend::kFixed:
      return requested;
    case Backend::kAuto:
    case Backend::kAvx2:
      if (force_scalar() || !cpu_has_avx2()) return Backend::kScalar;
      return Backend::kAvx2;
  }
  return Backend::kScalar;
}

}  // namespace linalg::simd
