#include "linalg/mahalanobis.hpp"

#include <cmath>
#include <stdexcept>

namespace linalg {

double mahalanobis_distance(const Vector& x, const Vector& mu,
                            const Cholesky& sigma_factor) {
  if (x.size() != mu.size() || x.size() != sigma_factor.dim()) {
    throw std::invalid_argument("mahalanobis_distance: size mismatch");
  }
  Vector d = subtract(x, mu);
  const double q = sigma_factor.quadratic_form(d);
  return std::sqrt(std::max(0.0, q));
}

double mahalanobis_distance_inv(const Vector& x, const Vector& mu,
                                const Matrix& sigma_inverse) {
  if (x.size() != mu.size() || sigma_inverse.rows() != x.size() ||
      sigma_inverse.cols() != x.size()) {
    throw std::invalid_argument("mahalanobis_distance_inv: size mismatch");
  }
  Vector d = subtract(x, mu);
  Vector sd = sigma_inverse * d;
  const double q = dot(d, sd);
  return std::sqrt(std::max(0.0, q));
}

}  // namespace linalg
