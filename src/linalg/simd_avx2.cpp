// AVX2 kernels: four edges per lane-quad, one edge per 64-bit lane.
//
// Bit-identity with the scalar oracle comes from the vectorization axis:
// lanes never interact, and each lane executes the same sub/mul/add
// sequence as simd_scalar.cpp (no FMA — this file builds with -mavx2 only
// and -ffp-contract=off, so neither the intrinsics nor the compiler fuse).
// The final sqrt(max(0, q)) is done in scalar std:: calls per lane because
// _mm256_max_pd(0, -0.0) keeps the -0.0 while std::max(0.0, -0.0) returns
// +0.0 — a sign difference bit-identity tests would (rightly) flag.
//
// The kernels process blocks of 16, 8, then 4 edges, largest first.  The
// accumulator chain of one lane is serial by the bit-identity contract
// (left-to-right adds, no reassociation), so a single chain runs at
// FP-add latency; the extra independent chains of the wider blocks
// overlap that latency, and the mu / inv_cov row broadcasts are shared
// across the whole block — wider blocks also stream the inverse
// covariance fewer times per edge.  The accumulators are deliberately
// named variables, not arrays: at -O2 GCC keeps named __m256d values in
// registers but spills indexed arrays to the stack, which costs more
// than the chaining saves.  Lane-local operation order is identical at
// every block width.
//
// This is the only translation unit allowed to use _mm256_* intrinsics
// outside the dispatch headers; the simd-boundary lint rule enforces that.
#include "linalg/simd_kernels.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace linalg::simd {
namespace {

inline void euclidean_block4(const BatchView& batch, const double* mu,
                             double* out, std::size_t e) {
  __m256d q0 = _mm256_setzero_pd();
  __m256d q1 = _mm256_setzero_pd();
  __m256d q2 = _mm256_setzero_pd();
  __m256d q3 = _mm256_setzero_pd();
  for (std::size_t i = 0; i < batch.dim; ++i) {
    const __m256d m = _mm256_set1_pd(mu[i]);
    const double* col = batch.soa + i * batch.stride + e;
    const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(col), m);
    const __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(col + 4), m);
    const __m256d d2 = _mm256_sub_pd(_mm256_loadu_pd(col + 8), m);
    const __m256d d3 = _mm256_sub_pd(_mm256_loadu_pd(col + 12), m);
    q0 = _mm256_add_pd(q0, _mm256_mul_pd(d0, d0));
    q1 = _mm256_add_pd(q1, _mm256_mul_pd(d1, d1));
    q2 = _mm256_add_pd(q2, _mm256_mul_pd(d2, d2));
    q3 = _mm256_add_pd(q3, _mm256_mul_pd(d3, d3));
  }
  alignas(32) double lanes[16];
  _mm256_store_pd(lanes, q0);
  _mm256_store_pd(lanes + 4, q1);
  _mm256_store_pd(lanes + 8, q2);
  _mm256_store_pd(lanes + 12, q3);
  for (std::size_t l = 0; l < 16; ++l) out[e + l] = std::sqrt(lanes[l]);
}

inline void euclidean_block2(const BatchView& batch, const double* mu,
                             double* out, std::size_t e) {
  __m256d q0 = _mm256_setzero_pd();
  __m256d q1 = _mm256_setzero_pd();
  for (std::size_t i = 0; i < batch.dim; ++i) {
    const __m256d m = _mm256_set1_pd(mu[i]);
    const double* col = batch.soa + i * batch.stride + e;
    const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(col), m);
    const __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(col + 4), m);
    q0 = _mm256_add_pd(q0, _mm256_mul_pd(d0, d0));
    q1 = _mm256_add_pd(q1, _mm256_mul_pd(d1, d1));
  }
  alignas(32) double lanes[8];
  _mm256_store_pd(lanes, q0);
  _mm256_store_pd(lanes + 4, q1);
  for (std::size_t l = 0; l < 8; ++l) out[e + l] = std::sqrt(lanes[l]);
}

inline void euclidean_block1(const BatchView& batch, const double* mu,
                             double* out, std::size_t e) {
  __m256d q = _mm256_setzero_pd();
  for (std::size_t i = 0; i < batch.dim; ++i) {
    const __m256d x = _mm256_loadu_pd(batch.soa + i * batch.stride + e);
    const __m256d d = _mm256_sub_pd(x, _mm256_set1_pd(mu[i]));
    q = _mm256_add_pd(q, _mm256_mul_pd(d, d));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, q);
  for (std::size_t l = 0; l < 4; ++l) out[e + l] = std::sqrt(lanes[l]);
}

/// Centered features for a block: feature i of the block's quad k lives
/// at dscratch[(i * nq + k) * 4 ..+4).
inline void center_block(const BatchView& batch, const double* mu,
                         double* dscratch, std::size_t e, std::size_t nq) {
  for (std::size_t i = 0; i < batch.dim; ++i) {
    const __m256d m = _mm256_set1_pd(mu[i]);
    const double* col = batch.soa + i * batch.stride + e;
    double* d = dscratch + i * nq * 4;
    for (std::size_t k = 0; k < nq; ++k) {
      _mm256_storeu_pd(d + k * 4,
                       _mm256_sub_pd(_mm256_loadu_pd(col + k * 4), m));
    }
  }
}

inline void mahalanobis_block4(const BatchView& batch, const double* mu,
                               const double* inv_cov, double* dscratch,
                               double* out, std::size_t e) {
  const std::size_t dim = batch.dim;
  center_block(batch, mu, dscratch, e, 4);
  __m256d q0 = _mm256_setzero_pd();
  __m256d q1 = _mm256_setzero_pd();
  __m256d q2 = _mm256_setzero_pd();
  __m256d q3 = _mm256_setzero_pd();
  for (std::size_t r = 0; r < dim; ++r) {
    __m256d s0 = _mm256_setzero_pd();
    __m256d s1 = _mm256_setzero_pd();
    __m256d s2 = _mm256_setzero_pd();
    __m256d s3 = _mm256_setzero_pd();
    const double* row = inv_cov + r * dim;
    for (std::size_t c = 0; c < dim; ++c) {
      const __m256d w = _mm256_set1_pd(row[c]);
      const double* d = dscratch + c * 16;
      s0 = _mm256_add_pd(s0, _mm256_mul_pd(w, _mm256_loadu_pd(d)));
      s1 = _mm256_add_pd(s1, _mm256_mul_pd(w, _mm256_loadu_pd(d + 4)));
      s2 = _mm256_add_pd(s2, _mm256_mul_pd(w, _mm256_loadu_pd(d + 8)));
      s3 = _mm256_add_pd(s3, _mm256_mul_pd(w, _mm256_loadu_pd(d + 12)));
    }
    const double* dr = dscratch + r * 16;
    q0 = _mm256_add_pd(q0, _mm256_mul_pd(_mm256_loadu_pd(dr), s0));
    q1 = _mm256_add_pd(q1, _mm256_mul_pd(_mm256_loadu_pd(dr + 4), s1));
    q2 = _mm256_add_pd(q2, _mm256_mul_pd(_mm256_loadu_pd(dr + 8), s2));
    q3 = _mm256_add_pd(q3, _mm256_mul_pd(_mm256_loadu_pd(dr + 12), s3));
  }
  alignas(32) double lanes[16];
  _mm256_store_pd(lanes, q0);
  _mm256_store_pd(lanes + 4, q1);
  _mm256_store_pd(lanes + 8, q2);
  _mm256_store_pd(lanes + 12, q3);
  for (std::size_t l = 0; l < 16; ++l) {
    out[e + l] = std::sqrt(std::max(0.0, lanes[l]));
  }
}

inline void mahalanobis_block2(const BatchView& batch, const double* mu,
                               const double* inv_cov, double* dscratch,
                               double* out, std::size_t e) {
  const std::size_t dim = batch.dim;
  center_block(batch, mu, dscratch, e, 2);
  __m256d q0 = _mm256_setzero_pd();
  __m256d q1 = _mm256_setzero_pd();
  for (std::size_t r = 0; r < dim; ++r) {
    __m256d s0 = _mm256_setzero_pd();
    __m256d s1 = _mm256_setzero_pd();
    const double* row = inv_cov + r * dim;
    for (std::size_t c = 0; c < dim; ++c) {
      const __m256d w = _mm256_set1_pd(row[c]);
      const double* d = dscratch + c * 8;
      s0 = _mm256_add_pd(s0, _mm256_mul_pd(w, _mm256_loadu_pd(d)));
      s1 = _mm256_add_pd(s1, _mm256_mul_pd(w, _mm256_loadu_pd(d + 4)));
    }
    const double* dr = dscratch + r * 8;
    q0 = _mm256_add_pd(q0, _mm256_mul_pd(_mm256_loadu_pd(dr), s0));
    q1 = _mm256_add_pd(q1, _mm256_mul_pd(_mm256_loadu_pd(dr + 4), s1));
  }
  alignas(32) double lanes[8];
  _mm256_store_pd(lanes, q0);
  _mm256_store_pd(lanes + 4, q1);
  for (std::size_t l = 0; l < 8; ++l) {
    out[e + l] = std::sqrt(std::max(0.0, lanes[l]));
  }
}

inline void mahalanobis_block1(const BatchView& batch, const double* mu,
                               const double* inv_cov, double* dscratch,
                               double* out, std::size_t e) {
  const std::size_t dim = batch.dim;
  center_block(batch, mu, dscratch, e, 1);
  __m256d q = _mm256_setzero_pd();
  for (std::size_t r = 0; r < dim; ++r) {
    __m256d s = _mm256_setzero_pd();
    const double* row = inv_cov + r * dim;
    for (std::size_t c = 0; c < dim; ++c) {
      const __m256d d = _mm256_loadu_pd(dscratch + c * 4);
      s = _mm256_add_pd(s, _mm256_mul_pd(_mm256_set1_pd(row[c]), d));
    }
    const __m256d dr = _mm256_loadu_pd(dscratch + r * 4);
    q = _mm256_add_pd(q, _mm256_mul_pd(dr, s));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, q);
  for (std::size_t l = 0; l < 4; ++l) {
    out[e + l] = std::sqrt(std::max(0.0, lanes[l]));
  }
}

}  // namespace

// vprofile-lint: hot
void euclidean_avx2(const BatchView& batch, const double* mu, double* out,
                    std::size_t begin, std::size_t end) {
  std::size_t e = begin;
  for (; e + 16 <= end; e += 16) euclidean_block4(batch, mu, out, e);
  for (; e + 8 <= end; e += 8) euclidean_block2(batch, mu, out, e);
  for (; e + 4 <= end; e += 4) euclidean_block1(batch, mu, out, e);
}

// vprofile-lint: hot
void mahalanobis_avx2(const BatchView& batch, const double* mu,
                      const double* inv_cov, double* dscratch, double* out,
                      std::size_t begin, std::size_t end) {
  std::size_t e = begin;
  for (; e + 16 <= end; e += 16) {
    mahalanobis_block4(batch, mu, inv_cov, dscratch, out, e);
  }
  for (; e + 8 <= end; e += 8) {
    mahalanobis_block2(batch, mu, inv_cov, dscratch, out, e);
  }
  for (; e + 4 <= end; e += 4) {
    mahalanobis_block1(batch, mu, inv_cov, dscratch, out, e);
  }
}

}  // namespace linalg::simd

#else  // non-x86: the dispatcher never selects kAvx2, but the symbols must
       // still link.

namespace linalg::simd {

void euclidean_avx2(const BatchView& batch, const double* mu, double* out,
                    std::size_t begin, std::size_t end) {
  euclidean_scalar(batch, mu, out, begin, end);
}

void mahalanobis_avx2(const BatchView& batch, const double* mu,
                      const double* inv_cov, double* dscratch, double* out,
                      std::size_t begin, std::size_t end) {
  mahalanobis_scalar(batch, mu, inv_cov, dscratch, out, begin, end);
}

}  // namespace linalg::simd

#endif
