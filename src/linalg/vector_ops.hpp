// Free-function vector arithmetic over std::vector<double>.
//
// Edge sets are short (tens of samples), so a plain contiguous vector with
// free functions keeps the call sites readable without committing to an
// expression-template library.
#pragma once

#include <cstddef>
#include <vector>

namespace linalg {

using Vector = std::vector<double>;

/// Element-wise sum; throws std::invalid_argument on size mismatch.
Vector add(const Vector& a, const Vector& b);
/// Element-wise difference a - b; throws on size mismatch.
Vector subtract(const Vector& a, const Vector& b);
/// Scalar multiple.
Vector scale(const Vector& a, double k);
/// Inner product; throws on size mismatch.
double dot(const Vector& a, const Vector& b);
/// L2 norm.
double norm(const Vector& a);
/// Euclidean distance between two points (Eq 2.1); throws on size mismatch.
double euclidean_distance(const Vector& a, const Vector& b);
/// Element-wise mean of a non-empty set of equal-length vectors; throws on
/// empty input or ragged sizes.
Vector mean_of(const std::vector<Vector>& xs);

}  // namespace linalg
