// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// Needed by the SIMPLE baseline's Fisher Discriminant Analysis, which
// diagonalizes the whitened between-class scatter matrix.  Edge-set feature
// spaces are small, so Jacobi's O(n^3) sweeps are more than fast enough and
// are unconditionally stable for symmetric input.
#pragma once

#include "linalg/matrix.hpp"

namespace linalg {

/// Eigenvalues (descending) and matching eigenvectors (columns of
/// `vectors`).
struct EigenDecomposition {
  Vector values;
  Matrix vectors;
};

/// Decomposes a symmetric matrix.  Throws std::invalid_argument when the
/// input is not square or not symmetric within `sym_tol`.
EigenDecomposition jacobi_eigen(const Matrix& a, double sym_tol = 1e-6,
                                int max_sweeps = 64);

}  // namespace linalg
