// Binary persistence for captured voltage traces.
//
// The paper "recorded the CAN bus traffic of each vehicle and replayed it
// into vProfile" for test repeatability; this store is the replay file
// format.  Little-endian binary, versioned.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "dsp/trace.hpp"

namespace io {

/// A recorded capture session: per-message traces plus digitizer metadata.
struct TraceSet {
  double sample_rate_hz = 0.0;
  int resolution_bits = 0;
  std::vector<dsp::Trace> traces;
};

/// Writes a trace set; returns false on stream failure.
bool save_traces(const TraceSet& set, std::ostream& out);
bool save_traces_file(const TraceSet& set, const std::string& path);

/// Reads a trace set; std::nullopt with `error` set on malformed input.
std::optional<TraceSet> load_traces(std::istream& in,
                                    std::string* error = nullptr);
std::optional<TraceSet> load_traces_file(const std::string& path,
                                         std::string* error = nullptr);

}  // namespace io
