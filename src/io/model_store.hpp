// Text (de)serialization of trained vProfile models.
//
// A deployed IDS trains once (in the shop, under controlled conditions)
// and loads the model at every ignition; this store is that persistence
// layer.  The format is a line-oriented text format, versioned, with full
// double precision.  Version 2 files end with a `crc32 <8-hex>` footer
// covering every preceding byte, so bit rot and torn writes are detected
// at load; footer-less version 1 files are still readable (no integrity
// check) for backward compatibility.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/model.hpp"

namespace io {

/// Writes a model; returns false on stream failure.
bool save_model(const vprofile::Model& model, std::ostream& out);
bool save_model_file(const vprofile::Model& model, const std::string& path);

/// Reads a model back.  Returns std::nullopt with a diagnostic in `error`
/// (if non-null) on malformed input, version mismatch, or stream failure.
std::optional<vprofile::Model> load_model(std::istream& in,
                                          std::string* error = nullptr);
std::optional<vprofile::Model> load_model_file(const std::string& path,
                                               std::string* error = nullptr);

}  // namespace io
