#include "io/model_store.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <istream>
#include <ostream>
#include <sstream>

#include "io/checksum.hpp"

namespace io {
namespace {

constexpr const char* kMagic = "vprofile-model";
/// Version 2 appends a `crc32 <8-hex>` footer covering every byte before
/// it; version 1 files (no footer) are still read for backward
/// compatibility, they just get no integrity check.
constexpr int kVersion = 2;
constexpr int kLegacyVersion = 1;
constexpr const char* kCrcPrefix = "crc32 ";

void write_vector(std::ostream& out, const linalg::Vector& v) {
  out << v.size();
  for (double x : v) out << ' ' << x;
  out << '\n';
}

bool read_vector(std::istream& in, linalg::Vector& v) {
  std::size_t n = 0;
  if (!(in >> n)) return false;
  v.resize(n);
  for (double& x : v) {
    if (!(in >> x)) return false;
  }
  return true;
}

void write_matrix(std::ostream& out, const linalg::Matrix& m) {
  out << m.rows() << ' ' << m.cols();
  for (double x : m.data()) out << ' ' << x;
  out << '\n';
}

bool read_matrix(std::istream& in, linalg::Matrix& m) {
  std::size_t rows = 0;
  std::size_t cols = 0;
  if (!(in >> rows >> cols)) return false;
  if (rows == 0 || cols == 0) {
    m = linalg::Matrix();
    return true;
  }
  m = linalg::Matrix(rows, cols);
  for (double& x : m.data()) {
    if (!(in >> x)) return false;
  }
  return true;
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool all_finite(const linalg::Vector& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

bool all_finite(const linalg::Matrix& m) {
  for (double x : m.data()) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

}  // namespace

namespace {

/// Serializes everything except the integrity footer.
bool write_body(const vprofile::Model& model, std::ostream& out) {
  out << std::setprecision(17);
  out << kMagic << ' ' << kVersion << '\n';
  out << to_string(model.metric()) << '\n';
  const auto& ex = model.extraction();
  out << ex.bit_width_samples << ' ' << ex.bit_threshold << ' '
      << ex.prefix_len << ' ' << ex.suffix_len << ' ' << ex.num_edge_sets
      << ' ' << ex.edge_set_spacing << '\n';
  out << model.clusters().size() << '\n';
  for (const auto& cl : model.clusters()) {
    // Cluster names may contain spaces; quote with a length prefix.
    out << cl.name.size() << ' ' << cl.name << '\n';
    out << cl.sas.size();
    for (std::uint8_t sa : cl.sas) out << ' ' << static_cast<int>(sa);
    out << '\n';
    write_vector(out, cl.mean);
    write_matrix(out, cl.covariance);
    write_matrix(out, cl.inv_covariance);
    out << cl.max_distance << ' ' << cl.edge_set_count << ' ';
    // NaN marks "use the global threshold" but operator>> cannot parse
    // "nan"; serialize it as an explicit token.
    if (std::isnan(cl.extraction_threshold)) {
      out << "global";
    } else {
      out << cl.extraction_threshold;
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace

bool save_model(const vprofile::Model& model, std::ostream& out) {
  std::ostringstream body;
  if (!write_body(model, body)) return false;
  const std::string payload = body.str();
  out << payload << kCrcPrefix << crc32_hex(crc32(payload)) << '\n';
  return static_cast<bool>(out);
}

bool save_model_file(const vprofile::Model& model, const std::string& path) {
  std::ofstream out(path);
  return out && save_model(model, out);
}

std::optional<vprofile::Model> load_model(std::istream& raw_in,
                                          std::string* error) {
  // Slurp the stream: the CRC footer covers raw bytes, so verification
  // has to happen before any formatted parsing consumes them.
  std::ostringstream slurp;
  slurp << raw_in.rdbuf();
  std::string content = slurp.str();
  if (raw_in.bad()) {
    fail(error, "stream failure");
    return std::nullopt;
  }

  {
    std::istringstream header(content);
    std::string magic;
    int version = 0;
    if (!(header >> magic >> version)) {
      fail(error, "unreadable header");
      return std::nullopt;
    }
    if (magic != kMagic) {
      fail(error, "not a vprofile model file");
      return std::nullopt;
    }
    if (version != kVersion && version != kLegacyVersion) {
      fail(error, "unsupported model version " + std::to_string(version));
      return std::nullopt;
    }
    if (version == kVersion) {
      // The footer is the final line: "crc32 <8 hex>\n" over every byte
      // before it.  A missing, truncated or mismatching footer all mean
      // the file cannot be trusted.
      const std::string footer_want = std::string(kCrcPrefix);
      const std::size_t footer_len = footer_want.size() + 8 + 1;  // + hex + \n
      if (content.size() < footer_len ||
          content.compare(content.size() - footer_len, footer_want.size(),
                          footer_want) != 0 ||
          content.back() != '\n') {
        fail(error, "missing or truncated integrity footer");
        return std::nullopt;
      }
      const std::string hex =
          content.substr(content.size() - 9, 8);  // between "crc32 " and \n
      std::uint32_t stored = 0;
      if (!parse_crc32_hex(hex, &stored)) {
        fail(error, "malformed integrity footer");
        return std::nullopt;
      }
      content.resize(content.size() - footer_len);
      if (crc32(content) != stored) {
        fail(error, "integrity check failed (CRC-32 mismatch)");
        return std::nullopt;
      }
    }
  }

  std::istringstream in(content);
  std::string magic;
  int version = 0;
  in >> magic >> version;  // validated above

  std::string metric_name;
  if (!(in >> metric_name)) {
    fail(error, "missing metric");
    return std::nullopt;
  }
  vprofile::DistanceMetric metric;
  if (metric_name == "euclidean") {
    metric = vprofile::DistanceMetric::kEuclidean;
  } else if (metric_name == "mahalanobis") {
    metric = vprofile::DistanceMetric::kMahalanobis;
  } else {
    fail(error, "unknown metric '" + metric_name + "'");
    return std::nullopt;
  }

  vprofile::ExtractionConfig ex;
  if (!(in >> ex.bit_width_samples >> ex.bit_threshold >> ex.prefix_len >>
        ex.suffix_len >> ex.num_edge_sets >> ex.edge_set_spacing)) {
    fail(error, "malformed extraction config");
    return std::nullopt;
  }
  if (!std::isfinite(ex.bit_threshold)) {
    fail(error, "non-finite extraction threshold");
    return std::nullopt;
  }

  std::size_t num_clusters = 0;
  if (!(in >> num_clusters) || num_clusters == 0) {
    fail(error, "malformed cluster count");
    return std::nullopt;
  }

  std::vector<vprofile::ClusterModel> clusters;
  clusters.reserve(num_clusters);
  for (std::size_t c = 0; c < num_clusters; ++c) {
    vprofile::ClusterModel cl;
    std::size_t name_len = 0;
    if (!(in >> name_len)) {
      fail(error, "malformed cluster name length");
      return std::nullopt;
    }
    in.get();  // the single separator space
    cl.name.resize(name_len);
    in.read(cl.name.data(), static_cast<std::streamsize>(name_len));
    if (!in) {
      fail(error, "truncated cluster name");
      return std::nullopt;
    }

    std::size_t num_sas = 0;
    if (!(in >> num_sas)) {
      fail(error, "malformed SA count");
      return std::nullopt;
    }
    cl.sas.resize(num_sas);
    for (auto& sa : cl.sas) {
      int v = 0;
      if (!(in >> v) || v < 0 || v > 255) {
        fail(error, "malformed SA");
        return std::nullopt;
      }
      sa = static_cast<std::uint8_t>(v);
    }

    if (!read_vector(in, cl.mean) || !read_matrix(in, cl.covariance) ||
        !read_matrix(in, cl.inv_covariance)) {
      fail(error, "malformed cluster statistics");
      return std::nullopt;
    }
    // operator>> rejects "nan"/"inf" tokens on this path, but a file
    // edited or generated elsewhere could still smuggle non-finite values
    // through (e.g. out-of-range literals); detection must never load a
    // model whose distances would all come out NaN.
    if (!all_finite(cl.mean) || !all_finite(cl.covariance) ||
        !all_finite(cl.inv_covariance)) {
      fail(error, "non-finite cluster statistics");
      return std::nullopt;
    }
    std::string threshold_token;
    if (!(in >> cl.max_distance >> cl.edge_set_count >> threshold_token)) {
      fail(error, "malformed cluster scalars");
      return std::nullopt;
    }
    if (!std::isfinite(cl.max_distance) || cl.max_distance < 0.0) {
      fail(error, "invalid cluster max distance");
      return std::nullopt;
    }
    if (threshold_token == "global") {
      cl.extraction_threshold = std::numeric_limits<double>::quiet_NaN();
    } else {
      try {
        cl.extraction_threshold = std::stod(threshold_token);
      } catch (const std::exception&) {
        fail(error, "malformed extraction threshold");
        return std::nullopt;
      }
      if (!std::isfinite(cl.extraction_threshold)) {
        fail(error, "malformed extraction threshold");
        return std::nullopt;
      }
    }
    clusters.push_back(std::move(cl));
  }

  try {
    return vprofile::Model(metric, ex, std::move(clusters));
  } catch (const std::exception& e) {
    fail(error, std::string("inconsistent model: ") + e.what());
    return std::nullopt;
  }
}

std::optional<vprofile::Model> load_model_file(const std::string& path,
                                               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  return load_model(in, error);
}

}  // namespace io
