#include "io/csv.hpp"

#include <iomanip>
#include <sstream>

namespace io {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& values) {
  std::ostringstream os;
  os << std::setprecision(17);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os << ',';
    os << values[i];
  }
  out_ << os.str() << '\n';
}

}  // namespace io
