#include "io/json.hpp"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>

namespace io::json {

namespace {

/// Guards against stack exhaustion on deeply nested (hostile or broken)
/// input; the project's own artifacts nest a handful of levels.
constexpr int kMaxDepth = 256;

struct Parser {
  const char* p;
  const char* begin;
  const char* end;
  std::string* error;

  bool fail(const std::string& reason) {
    if (error != nullptr && error->empty()) {
      *error = "json parse error at byte " +
               std::to_string(static_cast<std::size_t>(p - begin)) + ": " +
               reason;
    }
    return false;
  }

  void skip_ws() {
    while (p < end &&
           (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool consume(char c) {
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }

  bool literal(const char* word, std::size_t len) {
    if (static_cast<std::size_t>(end - p) < len) return false;
    for (std::size_t i = 0; i < len; ++i) {
      if (p[i] != word[i]) return false;
    }
    p += len;
    return true;
  }

  bool parse_hex4(std::uint32_t* out) {
    if (end - p < 4) return false;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = p[i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    p += 4;
    *out = v;
    return true;
  }

  static void append_utf8(std::string* s, std::uint32_t cp) {
    if (cp < 0x80) {
      *s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *s += static_cast<char>(0xC0 | (cp >> 6));
      *s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *s += static_cast<char>(0xE0 | (cp >> 12));
      *s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *s += static_cast<char>(0xF0 | (cp >> 18));
      *s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return fail("expected string");
    out->clear();
    while (p < end) {
      const char c = *p;
      if (c == '"') {
        ++p;
        return true;
      }
      if (c == '\\') {
        ++p;
        if (p >= end) return fail("truncated escape");
        const char esc = *p++;
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'u': {
            std::uint32_t cp = 0;
            if (!parse_hex4(&cp)) return fail("bad \\u escape");
            if (cp >= 0xD800 && cp <= 0xDBFF && end - p >= 6 && p[0] == '\\' &&
                p[1] == 'u') {
              p += 2;
              std::uint32_t low = 0;
              if (!parse_hex4(&low)) return fail("bad low surrogate");
              if (low >= 0xDC00 && low <= 0xDFFF) {
                cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
              } else {
                return fail("unpaired surrogate");
              }
            }
            append_utf8(out, cp);
            break;
          }
          default:
            return fail("unknown escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      *out += c;
      ++p;
    }
    return fail("unterminated string");
  }

  bool parse_value(Value* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (p >= end) return fail("unexpected end of input");
    const char c = *p;
    if (c == '{') {
      ++p;
      out->type = Value::Type::kObject;
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (!consume(':')) return fail("expected ':'");
        Value child;
        if (!parse_value(&child, depth + 1)) return false;
        out->object.emplace_back(std::move(key), std::move(child));
        skip_ws();
        if (consume(',')) continue;
        if (consume('}')) return true;
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++p;
      out->type = Value::Type::kArray;
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        Value child;
        if (!parse_value(&child, depth + 1)) return false;
        out->array.push_back(std::move(child));
        skip_ws();
        if (consume(',')) continue;
        if (consume(']')) return true;
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->type = Value::Type::kString;
      return parse_string(&out->string);
    }
    if (c == 't') {
      if (!literal("true", 4)) return fail("bad literal");
      out->type = Value::Type::kBool;
      out->boolean = true;
      return true;
    }
    if (c == 'f') {
      if (!literal("false", 5)) return fail("bad literal");
      out->type = Value::Type::kBool;
      out->boolean = false;
      return true;
    }
    if (c == 'n') {
      if (!literal("null", 4)) return fail("bad literal");
      out->type = Value::Type::kNull;
      return true;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      // strtod accepts a superset of JSON numbers (hex, inf); restrict the
      // token first so malformed documents do not slip through.
      const char* tok = p;
      if (*tok == '-') ++tok;
      bool digits = false;
      while (tok < end && *tok >= '0' && *tok <= '9') {
        ++tok;
        digits = true;
      }
      if (tok < end && *tok == '.') {
        ++tok;
        while (tok < end && *tok >= '0' && *tok <= '9') ++tok;
      }
      if (tok < end && (*tok == 'e' || *tok == 'E')) {
        ++tok;
        if (tok < end && (*tok == '+' || *tok == '-')) ++tok;
        while (tok < end && *tok >= '0' && *tok <= '9') ++tok;
      }
      if (!digits) return fail("bad number");
      const std::string token(p, tok);
      char* parsed_end = nullptr;
      out->number = std::strtod(token.c_str(), &parsed_end);
      if (parsed_end != token.c_str() + token.size()) {
        return fail("bad number");
      }
      out->type = Value::Type::kNumber;
      p = tok;
      return true;
    }
    return fail("unexpected character");
  }
};

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value* get(const Value* value, const std::string& key) {
  return value == nullptr ? nullptr : value->find(key);
}

bool parse(const std::string& text, Value* out, std::string* error) {
  if (error != nullptr) error->clear();
  Parser parser{text.data(), text.data(), text.data() + text.size(), error};
  *out = Value{};
  if (!parser.parse_value(out, 0)) return false;
  parser.skip_ws();
  if (parser.p != parser.end) return parser.fail("trailing garbage");
  return true;
}

bool flexible_number(const Value& value, double* out) {
  if (value.is_number()) {
    *out = value.number;
    return true;
  }
  if (value.is_string()) {
    if (value.string == "inf") {
      *out = std::numeric_limits<double>::infinity();
      return true;
    }
    if (value.string == "-inf") {
      *out = -std::numeric_limits<double>::infinity();
      return true;
    }
    if (value.string == "nan") {
      *out = std::numeric_limits<double>::quiet_NaN();
      return true;
    }
  }
  return false;
}

}  // namespace io::json
