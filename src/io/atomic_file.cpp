#include "io/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace io {
namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message + ": " + std::strerror(errno);
  return false;
}

/// Directory part of a path ("." when the path has no separator), for the
/// post-rename directory fsync that makes the new directory entry durable.
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

bool atomic_write_file(const std::string& path, const std::string& content,
                       std::string* error) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail(error, "cannot create '" + tmp + "'");

  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return fail(error, "write to '" + tmp + "' failed");
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return fail(error, "fsync of '" + tmp + "' failed");
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return fail(error, "close of '" + tmp + "' failed");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return fail(error, "rename '" + tmp + "' -> '" + path + "' failed");
  }
  // Make the directory entry durable too; a failure here is not fatal for
  // correctness of the content (the rename already happened atomically),
  // so only the fsync of the data above gates the return value.
  const int dirfd = ::open(parent_dir(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
  return true;
}

}  // namespace io
