// Minimal recursive-descent JSON reader for the project's own artifacts
// (incident bundles, manifests, bench reports).
//
// Scope is deliberately small: parse a complete UTF-8 document into an
// owning Value tree, preserving object key order.  Numbers are parsed
// with strtod, so a double serialized with %.17g (the project's exact-
// double convention, see obs/flight_recorder.cpp) round-trips bit-for-
// bit — the property vprofile_replay's verdict comparison rests on.
// Non-finite doubles are not valid JSON numbers; writers emit them as
// the strings "inf"/"-inf"/"nan" and readers go through
// flexible_number().
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace io::json {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  /// Key/value pairs in document order (deterministic iteration).
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const Value* find(const std::string& key) const;
};

/// Null-tolerant member lookup: get(get(&root, "a"), "b") walks a path
/// and yields nullptr as soon as any link is missing.
const Value* get(const Value* value, const std::string& key);

/// Parses exactly one JSON document (trailing whitespace allowed).
/// Returns false and fills `*error` (if non-null) with a byte offset and
/// reason on malformed input.
bool parse(const std::string& text, Value* out, std::string* error = nullptr);

/// Reads a number that may have been serialized as "inf"/"-inf"/"nan"
/// (the non-finite escape used by the project's writers).  Returns false
/// when the value is neither a number nor one of those strings.
bool flexible_number(const Value& value, double* out);

}  // namespace io::json
