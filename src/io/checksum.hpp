// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for integrity
// footers on persisted artifacts.
//
// A wedged write, a yanked ignition or a worn flash sector can leave a
// checkpoint file that still *parses* — numbers are numbers — but encodes
// a model the detector never trained.  A checksum footer turns silent
// corruption into a load failure the runtime can recover from (fall back
// to the last-good checkpoint) instead of scoring live traffic against
// garbage statistics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace io {

/// CRC-32 of `len` bytes starting at `data`.  The standard reflected
/// variant (init 0xFFFFFFFF, final xor 0xFFFFFFFF) so the values match
/// zlib's crc32() and can be checked with off-the-shelf tools.
std::uint32_t crc32(const void* data, std::size_t len);

inline std::uint32_t crc32(const std::string& s) {
  return crc32(s.data(), s.size());
}

/// Fixed-width lowercase hex rendering used by the checkpoint footers
/// ("deadbeef"), and its strict inverse.  parse returns false on anything
/// that is not exactly 8 hex digits.
std::string crc32_hex(std::uint32_t crc);
bool parse_crc32_hex(const std::string& hex, std::uint32_t* crc);

}  // namespace io
