// Minimal RFC-4180-style CSV writer for exporting figure data series.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace io {

/// Streams rows to an std::ostream, quoting fields that need it.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes one row of string fields.
  void write_row(const std::vector<std::string>& fields);
  /// Writes one row of numeric fields with full double precision.
  void write_row(const std::vector<double>& values);

  /// Quotes a field per RFC 4180 when it contains commas, quotes or
  /// newlines.
  static std::string escape(const std::string& field);

 private:
  std::ostream& out_;
};

}  // namespace io
