// Crash-safe whole-file replacement: write-temp + fsync + atomic rename.
//
// A checkpoint that is half-written when power dies must never shadow the
// previous good one.  POSIX rename(2) within a directory is atomic, so the
// sequence (write sibling temp file, fsync it, rename over the target,
// fsync the directory) guarantees a reader sees either the old complete
// file or the new complete file — never a prefix.
#pragma once

#include <string>

namespace io {

/// Replaces `path` with `content` atomically.  The temp file is created
/// next to the target (same filesystem, so the rename cannot degrade to a
/// copy).  Returns false with a diagnostic in `error` (if non-null) on any
/// failure; the target is untouched in that case.
bool atomic_write_file(const std::string& path, const std::string& content,
                       std::string* error = nullptr);

}  // namespace io
