#include "io/checksum.hpp"

#include <array>

namespace io {
namespace {

/// Table for the reflected polynomial, built once at first use.  A plain
/// function-local static keeps the construction race-free without any
/// global initialization order concerns.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string crc32_hex(std::uint32_t crc) {
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[crc & 0xFu];
    crc >>= 4;
  }
  return out;
}

bool parse_crc32_hex(const std::string& hex, std::uint32_t* crc) {
  if (hex.size() != 8 || crc == nullptr) return false;
  std::uint32_t value = 0;
  for (char ch : hex) {
    std::uint32_t digit = 0;
    if (ch >= '0' && ch <= '9') {
      digit = static_cast<std::uint32_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      digit = static_cast<std::uint32_t>(ch - 'a') + 10u;
    } else if (ch >= 'A' && ch <= 'F') {
      digit = static_cast<std::uint32_t>(ch - 'A') + 10u;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  *crc = value;
  return true;
}

}  // namespace io
