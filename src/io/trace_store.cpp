#include "io/trace_store.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace io {
namespace {

constexpr std::uint32_t kMagic = 0x56505452;  // "VPTR"
constexpr std::uint32_t kVersion = 1;

constexpr std::uint32_t byte_swap(std::uint32_t v) {
  return ((v & 0xff000000u) >> 24) | ((v & 0x00ff0000u) >> 8) |
         ((v & 0x0000ff00u) << 8) | ((v & 0x000000ffu) << 24);
}

// Upper bounds for header-declared sizes.  A truncated or corrupted
// header can otherwise declare a multi-terabyte allocation and take the
// process down with bad_alloc before the sample reads have a chance to
// fail cleanly.
constexpr std::uint64_t kMaxTraceLen = 1ull << 28;     // 2 Gi of doubles
constexpr std::uint64_t kMaxTraceCount = 1ull << 28;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool read_pod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

bool fail(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

bool save_traces(const TraceSet& set, std::ostream& out) {
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod(out, set.sample_rate_hz);
  write_pod(out, static_cast<std::int32_t>(set.resolution_bits));
  write_pod(out, static_cast<std::uint64_t>(set.traces.size()));
  for (const dsp::Trace& t : set.traces) {
    write_pod(out, static_cast<std::uint64_t>(t.size()));
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.size() * sizeof(double)));
  }
  return static_cast<bool>(out);
}

bool save_traces_file(const TraceSet& set, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  return out && save_traces(set, out);
}

std::optional<TraceSet> load_traces(std::istream& in, std::string* error) {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (!read_pod(in, magic)) {
    fail(error, "not a vprofile trace file");
    return std::nullopt;
  }
  if (magic == byte_swap(kMagic)) {
    // The file itself is valid but was written on (or for) a machine with
    // the opposite byte order; every multi-byte field would read garbled.
    fail(error, "trace file endianness mismatch");
    return std::nullopt;
  }
  if (magic != kMagic) {
    fail(error, "not a vprofile trace file");
    return std::nullopt;
  }
  if (!read_pod(in, version) || version != kVersion) {
    fail(error, "unsupported trace file version");
    return std::nullopt;
  }
  TraceSet set;
  std::int32_t bits = 0;
  std::uint64_t count = 0;
  if (!read_pod(in, set.sample_rate_hz) || !read_pod(in, bits) ||
      !read_pod(in, count)) {
    fail(error, "truncated trace header");
    return std::nullopt;
  }
  if (!std::isfinite(set.sample_rate_hz) || set.sample_rate_hz <= 0.0) {
    fail(error, "invalid sample rate");
    return std::nullopt;
  }
  if (bits <= 0 || bits > 32) {
    fail(error, "invalid resolution");
    return std::nullopt;
  }
  if (count > kMaxTraceCount) {
    fail(error, "implausible trace count");
    return std::nullopt;
  }
  set.resolution_bits = bits;
  set.traces.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t len = 0;
    if (!read_pod(in, len)) {
      fail(error, "truncated trace length");
      return std::nullopt;
    }
    if (len > kMaxTraceLen) {
      fail(error, "implausible trace length");
      return std::nullopt;
    }
    dsp::Trace t(len);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(len * sizeof(double)));
    if (!in) {
      fail(error, "truncated trace samples");
      return std::nullopt;
    }
    for (double s : t) {
      if (!std::isfinite(s)) {
        fail(error, "non-finite trace sample");
        return std::nullopt;
      }
    }
    set.traces.push_back(std::move(t));
  }
  return set;
}

std::optional<TraceSet> load_traces_file(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  return load_traces(in, error);
}

}  // namespace io
