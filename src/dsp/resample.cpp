#include "dsp/resample.hpp"

#include <stdexcept>

namespace dsp {

Trace downsample(const Trace& trace, std::size_t factor, std::size_t phase) {
  if (factor == 0) {
    throw std::invalid_argument("downsample: factor must be positive");
  }
  if (phase >= factor) {
    throw std::invalid_argument("downsample: phase must be < factor");
  }
  Trace out;
  out.reserve(trace.size() / factor + 1);
  for (std::size_t i = phase; i < trace.size(); i += factor) {
    out.push_back(trace[i]);
  }
  return out;
}

}  // namespace dsp
