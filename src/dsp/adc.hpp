// Digitizer front-end model: maps differential bus volts to offset-binary
// ADC codes at a configurable resolution.
//
// Models both capture devices of the paper: the AlazarTech card
// (20 MS/s, 16 bit, Vehicle A) and the custom side-channel board
// (10 MS/s, 12 bit, Vehicle B).  Codes are always expressed on the
// full-scale grid of the configured resolution, and `requantize_codes`
// reproduces the paper's software experiments that "drop the least
// significant bits".
//
// The sampling rate and analog range are unit-safe strong types
// (core/units.hpp); individual codes stay raw doubles because they live on
// the dimensionless ADC grid shared with dsp::Trace.
#pragma once

#include <cstdint>

#include "core/units.hpp"
#include "dsp/trace.hpp"

namespace dsp {

/// Digitizer configuration and conversion.
class AdcModel {
 public:
  /// `sample_rate` > 0, 2 <= `resolution_bits` <= 24, v_min < v_max.
  /// The defaults span the CAN differential range with headroom for
  /// overshoot, placing the recessive level near code 2^(bits-2) — with
  /// these values a 16-bit conversion puts the paper's Fig 2.5 threshold
  /// of 38000 roughly mid-edge.
  AdcModel(units::SampleRateHz sample_rate, int resolution_bits,
           units::Volts v_min = units::Volts{-1.0},
           units::Volts v_max = units::Volts{3.0});

  units::SampleRateHz sample_rate() const { return sample_rate_; }
  int resolution_bits() const { return resolution_bits_; }
  units::Volts v_min() const { return v_min_; }
  units::Volts v_max() const { return v_max_; }
  std::uint32_t max_code() const { return max_code_; }

  /// Quantizes one voltage to the nearest code, clamping at the rails.
  double quantize(double volts) const;
  /// Converts a code back to the centre voltage of its quantization bin.
  double to_volts(double code) const;
  /// Quantizes a whole voltage trace.
  Trace quantize_trace(const Trace& volts) const;

  /// Digitizer with the same analog range but fewer bits, for resolution
  /// sweeps.
  AdcModel with_resolution(int bits) const;
  /// Digitizer with a different sample rate (same range and resolution).
  AdcModel with_sample_rate(units::SampleRateHz rate) const;

 private:
  units::SampleRateHz sample_rate_;
  int resolution_bits_;
  units::Volts v_min_;
  units::Volts v_max_;
  std::uint32_t max_code_;
  double volts_per_code_;
};

/// Drops LSBs from codes captured at `from_bits`, keeping the original code
/// scale (values snap to multiples of 2^(from-to)), exactly like the
/// paper's software resolution reduction in Section 4.3.  Throws
/// std::invalid_argument when to_bits > from_bits or either is < 1.
Trace requantize_codes(const Trace& codes, int from_bits, int to_bits);

}  // namespace dsp
