#include "dsp/adc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dsp {

AdcModel::AdcModel(double sample_rate_hz, int resolution_bits, double v_min,
                   double v_max)
    : sample_rate_hz_(sample_rate_hz),
      resolution_bits_(resolution_bits),
      v_min_(v_min),
      v_max_(v_max) {
  if (sample_rate_hz <= 0.0) {
    throw std::invalid_argument("AdcModel: sample rate must be positive");
  }
  if (resolution_bits < 2 || resolution_bits > 24) {
    throw std::invalid_argument("AdcModel: resolution must be in [2, 24]");
  }
  if (v_min >= v_max) {
    throw std::invalid_argument("AdcModel: v_min must be < v_max");
  }
  max_code_ = (1u << resolution_bits) - 1u;
  volts_per_code_ = (v_max_ - v_min_) / static_cast<double>(max_code_);
}

double AdcModel::quantize(double volts) const {
  const double clamped = std::clamp(volts, v_min_, v_max_);
  const double code = std::round((clamped - v_min_) / volts_per_code_);
  return std::clamp(code, 0.0, static_cast<double>(max_code_));
}

double AdcModel::to_volts(double code) const {
  return v_min_ + code * volts_per_code_;
}

Trace AdcModel::quantize_trace(const Trace& volts) const {
  Trace out(volts.size());
  for (std::size_t i = 0; i < volts.size(); ++i) out[i] = quantize(volts[i]);
  return out;
}

AdcModel AdcModel::with_resolution(int bits) const {
  return AdcModel(sample_rate_hz_, bits, v_min_, v_max_);
}

AdcModel AdcModel::with_sample_rate(double hz) const {
  return AdcModel(hz, resolution_bits_, v_min_, v_max_);
}

Trace requantize_codes(const Trace& codes, int from_bits, int to_bits) {
  if (to_bits < 1 || from_bits < 1 || to_bits > from_bits) {
    throw std::invalid_argument("requantize_codes: invalid bit widths");
  }
  if (to_bits == from_bits) return codes;
  const double step = static_cast<double>(1u << (from_bits - to_bits));
  Trace out(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    out[i] = std::floor(codes[i] / step) * step;
  }
  return out;
}

}  // namespace dsp
