#include "dsp/adc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dsp {

AdcModel::AdcModel(units::SampleRateHz sample_rate, int resolution_bits,
                   units::Volts v_min, units::Volts v_max)
    : sample_rate_(sample_rate),
      resolution_bits_(resolution_bits),
      v_min_(v_min),
      v_max_(v_max) {
  if (sample_rate <= units::SampleRateHz{0.0}) {
    throw std::invalid_argument("AdcModel: sample rate must be positive");
  }
  if (resolution_bits < 2 || resolution_bits > 24) {
    throw std::invalid_argument("AdcModel: resolution must be in [2, 24]");
  }
  if (v_min >= v_max) {
    throw std::invalid_argument("AdcModel: v_min must be < v_max");
  }
  max_code_ = (1u << resolution_bits) - 1u;
  volts_per_code_ = (v_max_ - v_min_).value() / static_cast<double>(max_code_);
}

double AdcModel::quantize(double volts) const {
  const double clamped = std::clamp(volts, v_min_.value(), v_max_.value());
  const double code = std::round((clamped - v_min_.value()) / volts_per_code_);
  return std::clamp(code, 0.0, static_cast<double>(max_code_));
}

double AdcModel::to_volts(double code) const {
  return v_min_.value() + code * volts_per_code_;
}

Trace AdcModel::quantize_trace(const Trace& volts) const {
  Trace out(volts.size());
  for (std::size_t i = 0; i < volts.size(); ++i) out[i] = quantize(volts[i]);
  return out;
}

AdcModel AdcModel::with_resolution(int bits) const {
  return AdcModel(sample_rate_, bits, v_min_, v_max_);
}

AdcModel AdcModel::with_sample_rate(units::SampleRateHz rate) const {
  return AdcModel(rate, resolution_bits_, v_min_, v_max_);
}

Trace requantize_codes(const Trace& codes, int from_bits, int to_bits) {
  if (to_bits < 1 || from_bits < 1 || to_bits > from_bits) {
    throw std::invalid_argument("requantize_codes: invalid bit widths");
  }
  if (to_bits == from_bits) return codes;
  const double step = static_cast<double>(1u << (from_bits - to_bits));
  Trace out(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    out[i] = std::floor(codes[i] / step) * step;
  }
  return out;
}

}  // namespace dsp
