// Windowed-sinc FIR low-pass filter.  Used by the Murvay-Groza-style MSE
// baseline, which removes noise with a low-pass filter before
// fingerprinting (Section 1.2.1).
#pragma once

#include <vector>

#include "dsp/trace.hpp"

namespace dsp {

/// Linear-phase low-pass FIR (Hamming-windowed sinc).
class FirLowPass {
 public:
  /// `cutoff_hz` must be in (0, sample_rate_hz / 2); `num_taps` odd and
  /// >= 3.  Throws std::invalid_argument otherwise.
  FirLowPass(double cutoff_hz, double sample_rate_hz, std::size_t num_taps);

  const std::vector<double>& taps() const { return taps_; }

  /// Filters a trace.  Uses edge-value padding so the output has the same
  /// length and no startup ramp from zero.
  Trace apply(const Trace& input) const;

 private:
  std::vector<double> taps_;
};

}  // namespace dsp
