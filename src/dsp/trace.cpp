#include "dsp/trace.hpp"

namespace dsp {

std::optional<std::size_t> find_sof(const Trace& trace, double threshold) {
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i] >= threshold) return i;
  }
  return std::nullopt;
}

std::size_t align_to_edge_start(const Trace& trace, std::size_t pos,
                                double threshold) {
  if (trace.empty()) return 0;
  if (pos >= trace.size()) pos = trace.size() - 1;
  const bool side = trace[pos] >= threshold;
  while (pos > 0 && (trace[pos - 1] >= threshold) == side) --pos;
  return pos;
}

}  // namespace dsp
