// Integer-factor decimation for the sampling-rate sweep experiments
// (Tables 4.6/4.7, Fig 3.1a).  The paper downsamples recorded data in
// software by keeping every k-th sample; anti-alias filtering is
// intentionally omitted to match.
#pragma once

#include "dsp/trace.hpp"

namespace dsp {

/// Keeps samples at indices phase, phase+factor, ...  Throws
/// std::invalid_argument when factor == 0 or phase >= factor.
Trace downsample(const Trace& trace, std::size_t factor,
                 std::size_t phase = 0);

}  // namespace dsp
