// Sampled-voltage trace type and small scanning helpers shared by the
// digitizer, the extractor and the baselines.
//
// A Trace holds ADC codes (offset binary rendered as doubles, e.g. a 16-bit
// digitizer produces values in [0, 65535]); keeping codes rather than volts
// matches the paper, whose thresholds (e.g. 38000 in Fig 2.5) are code
// values.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace dsp {

using Trace = std::vector<double>;

/// Index of the first sample at or above `threshold` — the first dominant
/// sample, i.e. the SOF edge of a message-aligned capture.  std::nullopt if
/// the trace never crosses.
std::optional<std::size_t> find_sof(const Trace& trace, double threshold);

/// Given a position inside/near a bit transition, walks backwards to the
/// last sample on the other side of `threshold` and returns the index of
/// the sample just after the crossing (the paper's AlignToEdgeCenter
/// anchors bit sampling to transition centres).
std::size_t align_to_edge_start(const Trace& trace, std::size_t pos,
                                double threshold);

}  // namespace dsp
