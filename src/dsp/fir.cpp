#include "dsp/fir.hpp"

#include <cmath>
#include <stdexcept>

namespace dsp {

FirLowPass::FirLowPass(double cutoff_hz, double sample_rate_hz,
                       std::size_t num_taps) {
  if (sample_rate_hz <= 0.0 || cutoff_hz <= 0.0 ||
      cutoff_hz >= sample_rate_hz / 2.0) {
    throw std::invalid_argument("FirLowPass: cutoff must be in (0, fs/2)");
  }
  if (num_taps < 3 || num_taps % 2 == 0) {
    throw std::invalid_argument("FirLowPass: num_taps must be odd and >= 3");
  }
  taps_.resize(num_taps);
  const double fc = cutoff_hz / sample_rate_hz;  // normalized cutoff
  const std::ptrdiff_t mid = static_cast<std::ptrdiff_t>(num_taps / 2);
  double sum = 0.0;
  for (std::size_t i = 0; i < num_taps; ++i) {
    const std::ptrdiff_t k = static_cast<std::ptrdiff_t>(i) - mid;
    const double sinc =
        (k == 0) ? 2.0 * fc
                 : std::sin(2.0 * M_PI * fc * static_cast<double>(k)) /
                       (M_PI * static_cast<double>(k));
    const double window =
        0.54 - 0.46 * std::cos(2.0 * M_PI * static_cast<double>(i) /
                               static_cast<double>(num_taps - 1));
    taps_[i] = sinc * window;
    sum += taps_[i];
  }
  // Normalize to unity DC gain so steady-state levels are preserved.
  for (double& t : taps_) t /= sum;
}

Trace FirLowPass::apply(const Trace& input) const {
  if (input.empty()) return {};
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(input.size());
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(taps_.size() / 2);
  Trace out(input.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t t = 0; t < taps_.size(); ++t) {
      std::ptrdiff_t src = i + static_cast<std::ptrdiff_t>(t) - half;
      if (src < 0) src = 0;
      if (src >= n) src = n - 1;
      acc += taps_[t] * input[static_cast<std::size_t>(src)];
    }
    out[static_cast<std::size_t>(i)] = acc;
  }
  return out;
}

}  // namespace dsp
