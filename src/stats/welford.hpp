// Numerically stable running moments (Welford's algorithm), scalar and
// element-wise vector variants.  The vector variant backs the per-sample-
// index standard deviation analysis of Fig 4.4.
#pragma once

#include <cstddef>
#include <vector>

namespace stats {

/// Running mean / variance of a scalar stream.
class Welford {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Population variance (divides by n); 0 when fewer than 2 samples.
  double variance() const;
  /// Unbiased sample variance (divides by n-1); 0 when fewer than 2 samples.
  double sample_variance() const;
  double stddev() const;
  double sample_stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Element-wise running mean / variance over fixed-length vectors.
class VectorWelford {
 public:
  explicit VectorWelford(std::size_t dim);

  /// Adds one observation; throws std::invalid_argument on dimension
  /// mismatch.
  void add(const std::vector<double>& x);

  std::size_t count() const { return n_; }
  std::size_t dim() const { return dim_; }
  const std::vector<double>& mean() const { return mean_; }
  std::vector<double> variance() const;
  std::vector<double> stddev() const;

 private:
  std::size_t dim_;
  std::size_t n_ = 0;
  std::vector<double> mean_;
  std::vector<double> m2_;
};

}  // namespace stats
