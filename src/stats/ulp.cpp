#include "stats/ulp.hpp"

#include <cmath>
#include <cstring>
#include <limits>

namespace stats {
namespace {

/// Maps the double line onto a monotone signed-integer line: negative
/// values mirror around zero so ordering (and therefore distance) is
/// preserved across the sign boundary.
std::int64_t ordered_bits(double x) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &x, sizeof(bits));
  const std::uint64_t sign = std::uint64_t{1} << 63;
  if ((bits & sign) == 0) return static_cast<std::int64_t>(bits);
  // Negative values count down from -1 (-0.0) as magnitude grows.
  return -static_cast<std::int64_t>(bits & ~sign) - 1;
}

}  // namespace

std::uint64_t ulp_distance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  const std::int64_t oa = ordered_bits(a);
  const std::int64_t ob = ordered_bits(b);
  return oa >= ob ? static_cast<std::uint64_t>(oa) - static_cast<std::uint64_t>(ob)
                  : static_cast<std::uint64_t>(ob) - static_cast<std::uint64_t>(oa);
}

}  // namespace stats
