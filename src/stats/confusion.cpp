#include "stats/confusion.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace stats {

void BinaryConfusion::add(bool actual_anomaly, bool predicted_anomaly) {
  if (actual_anomaly) {
    predicted_anomaly ? ++tp_ : ++fn_;
  } else {
    predicted_anomaly ? ++fp_ : ++tn_;
  }
}

void BinaryConfusion::merge(const BinaryConfusion& other) {
  tp_ += other.tp_;
  tn_ += other.tn_;
  fp_ += other.fp_;
  fn_ += other.fn_;
}

double BinaryConfusion::accuracy() const {
  const std::uint64_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(tp_ + tn_) / static_cast<double>(n);
}

double BinaryConfusion::precision() const {
  const std::uint64_t denom = tp_ + fp_;
  if (denom == 0) return (tp_ + fn_ == 0) ? 1.0 : 0.0;
  return static_cast<double>(tp_) / static_cast<double>(denom);
}

double BinaryConfusion::recall() const {
  const std::uint64_t denom = tp_ + fn_;
  if (denom == 0) return 1.0;
  return static_cast<double>(tp_) / static_cast<double>(denom);
}

double BinaryConfusion::f_score() const {
  const double p = precision();
  const double r = recall();
  // Exact-zero guard against division by zero, not a tolerance test.
  // vprofile-lint: allow(float-eq)
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

std::string BinaryConfusion::to_table(const std::string& title) const {
  std::ostringstream os;
  os << title << '\n';
  os << "                    Predicted\n";
  os << "                    Anomaly      Normal\n";
  os << "  Actual Anomaly  " << std::setw(9) << tp_ << "  " << std::setw(10)
     << fn_ << '\n';
  os << "  Actual Normal   " << std::setw(9) << fp_ << "  " << std::setw(10)
     << tn_ << '\n';
  os << std::fixed << std::setprecision(5);
  os << "  accuracy=" << accuracy() << "  precision=" << precision()
     << "  recall=" << recall() << "  F-score=" << f_score() << '\n';
  return os.str();
}

MultiClassConfusion::MultiClassConfusion(std::size_t num_classes)
    : n_(num_classes), cells_(num_classes * num_classes, 0) {
  if (num_classes == 0) {
    throw std::invalid_argument("MultiClassConfusion: need >= 1 class");
  }
}

void MultiClassConfusion::add(std::size_t actual, std::size_t predicted) {
  if (actual >= n_ || predicted >= n_) {
    throw std::out_of_range("MultiClassConfusion::add: class out of range");
  }
  ++cells_[actual * n_ + predicted];
  ++total_;
}

std::uint64_t MultiClassConfusion::count(std::size_t actual,
                                         std::size_t predicted) const {
  if (actual >= n_ || predicted >= n_) {
    throw std::out_of_range("MultiClassConfusion::count: class out of range");
  }
  return cells_[actual * n_ + predicted];
}

double MultiClassConfusion::accuracy() const {
  if (total_ == 0) return 0.0;
  std::uint64_t diag = 0;
  for (std::size_t i = 0; i < n_; ++i) diag += cells_[i * n_ + i];
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double MultiClassConfusion::precision(std::size_t cls) const {
  std::uint64_t tp = count(cls, cls);
  std::uint64_t predicted = 0;
  for (std::size_t a = 0; a < n_; ++a) predicted += cells_[a * n_ + cls];
  if (predicted == 0) return 0.0;
  return static_cast<double>(tp) / static_cast<double>(predicted);
}

double MultiClassConfusion::recall(std::size_t cls) const {
  std::uint64_t tp = count(cls, cls);
  std::uint64_t actual = 0;
  for (std::size_t p = 0; p < n_; ++p) actual += cells_[cls * n_ + p];
  if (actual == 0) return 0.0;
  return static_cast<double>(tp) / static_cast<double>(actual);
}

double MultiClassConfusion::f_score(std::size_t cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  // Exact-zero guard against division by zero, not a tolerance test.
  // vprofile-lint: allow(float-eq)
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double MultiClassConfusion::macro_f_score() const {
  double sum = 0.0;
  for (std::size_t c = 0; c < n_; ++c) sum += f_score(c);
  return sum / static_cast<double>(n_);
}

std::string MultiClassConfusion::to_table(
    const std::string& title, const std::vector<std::string>& labels) const {
  if (labels.size() != n_) {
    throw std::invalid_argument("MultiClassConfusion::to_table: label count");
  }
  std::ostringstream os;
  os << title << '\n';
  os << std::setw(12) << "actual\\pred";
  for (const auto& l : labels) os << std::setw(10) << l;
  os << '\n';
  for (std::size_t a = 0; a < n_; ++a) {
    os << std::setw(12) << labels[a];
    for (std::size_t p = 0; p < n_; ++p) os << std::setw(10) << count(a, p);
    os << '\n';
  }
  os << std::fixed << std::setprecision(5) << "  accuracy=" << accuracy()
     << "  macro-F=" << macro_f_score() << '\n';
  return os.str();
}

}  // namespace stats
