// Normal-approximation confidence intervals, used for the 99% CI error bars
// of Figs 4.6-4.8.
#pragma once

#include <cstddef>
#include <vector>

namespace stats {

/// A symmetric confidence interval around a sample mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;

  double lower() const { return mean - half_width; }
  double upper() const { return mean + half_width; }
  bool contains(double x) const { return x >= lower() && x <= upper(); }
};

/// Two-sided standard-normal quantile z such that P(|Z| <= z) = confidence.
/// Implemented with the Acklam inverse-normal approximation (|error| < 1e-9),
/// so common confidences (0.90, 0.95, 0.99) need no lookup table.
double normal_quantile_two_sided(double confidence);

/// CI of the mean of `samples` at the given two-sided confidence level,
/// using the normal approximation with the sample standard deviation.
/// Throws std::invalid_argument on an empty sample set or a confidence
/// outside (0, 1).
ConfidenceInterval mean_confidence_interval(const std::vector<double>& samples,
                                            double confidence);

}  // namespace stats
