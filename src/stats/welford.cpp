#include "stats/welford.hpp"

#include <cmath>
#include <stdexcept>

namespace stats {

void Welford::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Welford::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double Welford::sample_variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Welford::stddev() const { return std::sqrt(variance()); }

double Welford::sample_stddev() const { return std::sqrt(sample_variance()); }

VectorWelford::VectorWelford(std::size_t dim)
    : dim_(dim), mean_(dim, 0.0), m2_(dim, 0.0) {
  if (dim == 0) throw std::invalid_argument("VectorWelford: dim must be > 0");
}

void VectorWelford::add(const std::vector<double>& x) {
  if (x.size() != dim_) {
    throw std::invalid_argument("VectorWelford::add: dimension mismatch");
  }
  ++n_;
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < dim_; ++i) {
    const double delta = x[i] - mean_[i];
    mean_[i] += delta * inv_n;
    m2_[i] += delta * (x[i] - mean_[i]);
  }
}

std::vector<double> VectorWelford::variance() const {
  std::vector<double> v(dim_, 0.0);
  if (n_ < 2) return v;
  for (std::size_t i = 0; i < dim_; ++i) {
    v[i] = m2_[i] / static_cast<double>(n_);
  }
  return v;
}

std::vector<double> VectorWelford::stddev() const {
  std::vector<double> v = variance();
  for (double& x : v) x = std::sqrt(x);
  return v;
}

}  // namespace stats
