// Binary (anomaly/normal) and multi-class confusion matrices with the
// metrics the paper reports: accuracy, precision, recall and F-score.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stats {

/// Binary confusion matrix for anomaly detection.
///
/// Follows the paper's convention: "positive" means anomaly.  The paper's
/// tables are laid out actual-(anomaly|normal) x predicted-(anomaly|normal);
/// to_table() renders that layout.
class BinaryConfusion {
 public:
  void add(bool actual_anomaly, bool predicted_anomaly);
  /// Merges counts from another matrix (used to combine per-shard results).
  void merge(const BinaryConfusion& other);

  std::uint64_t true_positives() const { return tp_; }
  std::uint64_t true_negatives() const { return tn_; }
  std::uint64_t false_positives() const { return fp_; }
  std::uint64_t false_negatives() const { return fn_; }
  std::uint64_t total() const { return tp_ + tn_ + fp_ + fn_; }

  /// (TP + TN) / total; 0 if empty.
  double accuracy() const;
  /// TP / (TP + FP); 1 if no positive predictions were made and no
  /// anomalies existed, 0 if predictions were made but none were right.
  double precision() const;
  /// TP / (TP + FN); 1 if there were no anomalies to find.
  double recall() const;
  /// Harmonic mean of precision and recall; 0 when both are 0.
  double f_score() const;

  /// Renders the 2x2 table in the paper's layout.
  std::string to_table(const std::string& title) const;

 private:
  std::uint64_t tp_ = 0;
  std::uint64_t tn_ = 0;
  std::uint64_t fp_ = 0;
  std::uint64_t fn_ = 0;
};

/// Square multi-class confusion matrix (used for sender identification:
/// which ECU was predicted vs which actually transmitted).
class MultiClassConfusion {
 public:
  explicit MultiClassConfusion(std::size_t num_classes);

  void add(std::size_t actual, std::size_t predicted);

  std::size_t num_classes() const { return n_; }
  std::uint64_t count(std::size_t actual, std::size_t predicted) const;
  std::uint64_t total() const { return total_; }

  double accuracy() const;
  /// One-vs-rest precision / recall / F-score for a single class.
  double precision(std::size_t cls) const;
  double recall(std::size_t cls) const;
  double f_score(std::size_t cls) const;
  /// Unweighted mean of per-class F-scores.
  double macro_f_score() const;

  std::string to_table(const std::string& title,
                       const std::vector<std::string>& labels) const;

 private:
  std::size_t n_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> cells_;  // row-major [actual][predicted]
};

}  // namespace stats
