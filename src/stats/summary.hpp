// Small descriptive-statistics helpers over in-memory sample vectors.
#pragma once

#include <cstddef>
#include <vector>

namespace stats {

/// Descriptive summary of a sample vector.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;        // population
  double sample_stddev = 0.0; // unbiased
  double min = 0.0;
  double max = 0.0;
};

/// Computes the summary in one pass; returns a zeroed Summary for an empty
/// input.
Summary summarize(const std::vector<double>& xs);

/// Linear-interpolation percentile, q in [0, 1].  Throws on empty input or
/// q outside [0, 1].
double percentile(std::vector<double> xs, double q);

/// Percent change from `baseline` to `value` ((value-baseline)/baseline*100).
/// Throws std::invalid_argument when baseline is 0.
double percent_delta(double baseline, double value);

}  // namespace stats
