// ULP (units-in-the-last-place) distance between doubles.
//
// The differential scoring harness asserts bit-identity between float
// backends; when that ever fails, "how far apart" matters more than "not
// equal".  ULP distance turns a pair of doubles into the number of
// representable values between them — 0 means bit-identical (up to +0/-0,
// which compare as 1 apart so sign drift is visible), small numbers mean
// reassociation or contraction, huge numbers mean a real logic bug.
#pragma once

#include <cstdint>

namespace stats {

/// Number of representable doubles strictly between a and b, plus one when
/// they differ (so 0 <=> identical bit patterns).  Returns UINT64_MAX when
/// either argument is NaN.
std::uint64_t ulp_distance(double a, double b);

}  // namespace stats
