#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/welford.hpp"

namespace stats {

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  if (xs.empty()) return s;
  Welford acc;
  for (double x : xs) acc.add(x);
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.sample_stddev = acc.sample_stddev();
  s.min = acc.min();
  s.max = acc.max();
  return s;
}

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("percentile: q must be in [0, 1]");
  }
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

double percent_delta(double baseline, double value) {
  // Exact-zero guard against division by zero, not a tolerance test.
  // vprofile-lint: allow(float-eq)
  if (baseline == 0.0) {
    throw std::invalid_argument("percent_delta: zero baseline");
  }
  return (value - baseline) / baseline * 100.0;
}

}  // namespace stats
