// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the library (waveform noise, traffic jitter,
// attack injection) draws from an explicitly seeded Rng so that a run is
// fully determined by its top-level seed.
#pragma once

#include <cstdint>
#include <random>

#include "core/units.hpp"

namespace stats {

/// Seeded pseudo-random source with the distributions the library needs.
///
/// Thin wrapper over std::mt19937_64 that keeps seeding explicit and
/// centralizes the distribution helpers (uniform, Gaussian, Bernoulli,
/// bounded integers) used throughout the simulator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}
  explicit Rng(units::Seed64 seed) : engine_(seed.value()) {}

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal draw scaled to the given mean and standard deviation.
  double gaussian(double mean = 0.0, double sigma = 1.0) {
    return mean + sigma * normal_(engine_);
  }

  /// True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Uniform integer in [0, n).  n must be positive.
  std::uint64_t below(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Derives an independent child generator; used to give each subsystem
  /// its own stream so adding draws in one place does not perturb another.
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace stats
