// Self-healing supervision around pipeline::DetectionPipeline.
//
// The pipeline scores frames; the supervisor keeps the *monitor* alive
// and the *model* honest across hours of unattended operation:
//
//  * Watchdog — judges liveness from completed-frame progress on an
//    externally supplied clock (poll(now_ns)); a wedged stage is released
//    (the planned-stall gate throws into the pipeline's per-frame
//    exception containment), the pipeline is drained and recreated, and
//    restarts back off exponentially up to a budget.
//  * Drift sentinel — Page–Hinkley over per-cluster distance streams;
//    an alarm escalates healthy -> drifting and starts a retrain
//    candidate.
//  * Guarded retraining — gate-accepted (Algorithm 4 + verdict gate)
//    edge sets fold into a *copy* of the live model; when the batch is
//    full the candidate must re-classify a held-back window of recent
//    benign frames without regressions before it is promoted.  Promotion
//    swaps the model at a drain point; regression rolls the candidate
//    back and degrades health instead.
//  * Checkpointing — the live model is committed to a CheckpointStore
//    periodically, at promotion, and at shutdown; load() recovers to
//    last-good when the latest checkpoint is corrupt.
//  * Overload governor — when the queue crosses the high-water mark the
//    supervisor sheds load deterministically (keep 1 of every
//    decimation_stride frames) until it falls below the low-water mark.
//
// Threading contract: one producer thread calls submit()/poll()/finish();
// results are handled on worker threads (serialized, in capture order) and
// forwarded to the caller's sink.  In lockstep mode submit() additionally
// waits for the frame's result (or a visibly wedged worker), which makes
// the entire supervised run — verdicts, promotions, restarts — a pure
// function of (model, config, input stream): the soak harness's
// bit-identical-fingerprint guarantee.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include <condition_variable>

#include "core/model.hpp"
#include "core/online_update.hpp"
#include "faults/runtime_fault.hpp"
#include "obs/flight_recorder.hpp"
#include "pipeline/pipeline.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/drift_sentinel.hpp"
#include "runtime/watchdog.hpp"

namespace obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace obs

namespace runtime {

struct SupervisorConfig {
  /// Base pipeline tuning.  keep_edge_set is forced on while online
  /// updates are enabled; stage_hook is owned by the supervisor (any
  /// caller-provided hook is replaced).
  pipeline::PipelineConfig pipeline;
  WatchdogConfig watchdog;
  DriftConfig drift;
  vprofile::GatedUpdateConfig gate;

  /// Checkpoint directory; empty disables checkpointing.
  std::string checkpoint_dir;
  /// Commit every N handled frames (0 = only at promotion and finish()).
  std::uint64_t checkpoint_every = 0;

  /// Master switch for the drift -> retrain -> promote loop.
  bool online_update = true;
  /// Gate-accepted edge sets per retrain candidate.
  std::size_t retrain_batch = 128;
  /// Held-back recent benign frames the candidate must re-classify.
  std::size_t validation_window = 64;
  /// 1-in-N holdout split: every N-th gate-eligible benign frame is held
  /// back for the validation window INSTEAD of being offered to the
  /// candidate, keeping validation disjoint from the update stream (a
  /// window the candidate has already absorbed cannot expose it).  0 is
  /// normalized to 1; 1 holds back everything, starving the candidate.
  std::size_t validation_holdout_stride = 4;
  /// Candidate anomalies allowed on that window before rollback.
  std::size_t validation_max_regressions = 0;

  /// Overload governor; high_water 0 disables.  While active, only every
  /// decimation_stride-th offered frame is forwarded.
  std::size_t governor_high_water = 0;
  std::size_t governor_low_water = 0;
  std::size_t decimation_stride = 2;

  /// Deterministic mode: submit() waits for the frame's result (or a
  /// wedged worker) before returning.
  bool lockstep = false;
  /// Injected runtime failures (soak harness).  Stall plans are keyed on
  /// the supervisor's global frame index.
  faults::RuntimeFaultPlan fault_plan;

  /// Flight recorder: per-frame evidence ring + freeze-on-trigger
  /// incident bundles (obs/flight_recorder.hpp).  Sizing, incident_dir
  /// and the manifest come from `recorder`; the supervisor itself wires
  /// the verdict/extract-error name tables, the context callback, and —
  /// unless `recorder` already sets them — the pipeline's metrics
  /// registry and tracer.  Triggers: anomalous/degraded verdicts, drift
  /// alarms, watchdog restarts, retrain rollbacks, governor activation,
  /// and trigger_incident().
  bool flight_recorder = false;
  obs::FlightRecorderConfig recorder;
};

struct SupervisorStats {
  std::uint64_t frames_offered = 0;    // submit() calls
  std::uint64_t frames_submitted = 0;  // forwarded to the pipeline
  std::uint64_t frames_decimated = 0;  // shed by the governor
  std::uint64_t frames_handled = 0;    // results seen (ordered)
  std::uint64_t worker_errors = 0;
  std::uint64_t restarts = 0;
  std::uint64_t stalls_detected = 0;
  std::uint64_t drift_alarms = 0;
  std::uint64_t candidates_started = 0;
  std::uint64_t promotions = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t checkpoints_committed = 0;
  vprofile::GatedUpdateStats gate;
};

class Supervisor {
 public:
  /// Called (serialized, in capture order) with every handled result.
  /// result.seq carries the supervisor's global frame index (stable
  /// across pipeline restarts), not the pipeline-local sequence.
  using ResultSink = std::function<void(const pipeline::FrameResult&)>;

  Supervisor(vprofile::Model model, SupervisorConfig config,
             ResultSink sink = nullptr);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Offers one trace.  Returns the frame's global index, or std::nullopt
  /// when the governor shed it or intake has finished.  Single producer.
  std::optional<std::uint64_t> submit(dsp::Trace trace);

  /// Supervision tick on the caller's clock (virtual or wall).  Runs the
  /// watchdog and applies any pending promotion / checkpoint.
  void poll(std::uint64_t now_ns);

  /// Drains the pipeline, applies pending control actions, commits the
  /// final checkpoint.  Idempotent.
  void finish();

  HealthState health() const;
  const vprofile::Model& model() const { return *model_; }
  SupervisorStats stats() const;
  /// Operator-requested incident (signal handler, status endpoint, CLI).
  /// Any thread; `detail` must have static storage duration.  No-op
  /// without a flight recorder.
  void trigger_incident(const char* detail);
  /// The flight recorder, or null when config.flight_recorder is off.
  obs::FlightRecorder* flight_recorder() { return recorder_.get(); }
  const obs::FlightRecorder* flight_recorder() const {
    return recorder_.get();
  }
  /// Aggregated pipeline counters across every restart generation.
  pipeline::CountersSnapshot pipeline_counters() const;
  /// Order-exact digest of every handled result (verdict, distance bits)
  /// plus the shed-frame count — the soak harness's equivalence check.
  std::uint64_t fingerprint() const;

 private:
  void create_pipeline();
  void handle(pipeline::FrameResult&& result);
  void stage_hook(std::uint64_t local_seq);
  /// Applies pending promotion / checkpoint decisions.  Must be called
  /// without mu_ held (drains the pipeline).
  void apply_control();
  /// Drains + recreates the pipeline; new_model empty = keep current.
  void restart_pipeline(std::optional<vprofile::Model> new_model);
  void accumulate_counters_locked();
  void release_armed_gates();
  void validate_candidate_locked();
  /// Bundle "context" object: detection config, deterministic counters,
  /// supervisor stats.  Takes mu_; call without it held.
  std::string context_json() const;

  SupervisorConfig config_;
  ResultSink sink_;
  std::shared_ptr<const vprofile::Model> model_;
  std::unique_ptr<pipeline::DetectionPipeline> pipe_;
  Watchdog watchdog_;
  DriftSentinel sentinel_;
  std::optional<CheckpointStore> store_;
  std::vector<std::unique_ptr<faults::StallGate>> gates_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  /// Caller's clock from the last poll(); stamps evidence records, so
  /// under lockstep + virtual clock the records stay deterministic.
  std::atomic<std::uint64_t> last_poll_ns_{0};

  mutable std::mutex mu_;
  std::condition_variable handled_cv_;
  /// Global index of the current pipeline's local seq 0.
  std::atomic<std::uint64_t> base_seq_{0};
  std::uint64_t expected_results_ = 0;  // frames forwarded to any pipeline
  std::uint64_t total_handled_ = 0;
  std::uint64_t wedged_ = 0;  // workers currently blocked on a stall gate
  std::uint64_t fingerprint_ = 0xcbf29ce484222325ULL;
  HealthState health_ = HealthState::kHealthy;
  bool finished_ = false;
  bool governor_active_ = false;
  std::uint64_t decimation_counter_ = 0;

  /// Retrain candidate (unique_ptr: GatedUpdater keeps a stable Model*).
  std::unique_ptr<vprofile::Model> candidate_;
  std::unique_ptr<vprofile::GatedUpdater> gated_;
  std::deque<vprofile::EdgeSet> validation_window_;
  std::uint64_t holdout_tick_ = 0;
  std::optional<vprofile::Model> pending_promotion_;
  bool checkpoint_due_ = false;

  pipeline::CountersSnapshot accumulated_;  // finished pipeline generations
  SupervisorStats stats_;
  vprofile::GatedUpdateStats gate_accum_;  // completed candidates' gate stats

  struct Instruments {
    obs::Counter* decimated = nullptr;
    obs::Counter* promotions = nullptr;
    obs::Counter* rollbacks = nullptr;
    obs::Counter* checkpoints = nullptr;
    obs::Counter* drift_alarms = nullptr;
    obs::Gauge* health = nullptr;
    obs::Gauge* governor_active = nullptr;
  } instruments_;
};

}  // namespace runtime
