// Crash-safe model checkpointing for the supervised runtime.
//
// Layout: a directory holding `model.vpm` (latest committed checkpoint)
// and `model.prev.vpm` (the previous one — "last good").  A commit
// rotates current -> previous and then writes the new model with
// write-temp + fsync + atomic-rename (io::atomic_write_file), so a crash
// at any instant leaves at least one intact, CRC-verified checkpoint on
// disk.  Rotation is integrity-gated: a current file that fails its CRC
// is never promoted to last-good, it is simply overwritten.
//
// load() prefers the latest checkpoint and falls back to last-good when
// the latest is corrupt (bit rot, torn write, hostile edit) — the model
// store's CRC-32 footer is what makes the corruption detectable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/model.hpp"

namespace runtime {

class CheckpointStore {
 public:
  /// The directory is created (recursively) on first commit.
  explicit CheckpointStore(std::string directory);

  /// Atomically commits a new checkpoint.  Returns false (with a
  /// diagnostic) on serialization or filesystem failure; the previous
  /// checkpoint is untouched in that case.
  bool commit(const vprofile::Model& model, std::string* error = nullptr);

  struct LoadResult {
    std::optional<vprofile::Model> model;
    /// True when the latest checkpoint was corrupt and last-good was used.
    bool recovered_last_good = false;
    /// Why the latest checkpoint was rejected (or why both were).
    std::string error;
  };

  /// Loads the newest intact checkpoint.  model == nullopt means neither
  /// file was readable (including the fresh-directory case).
  LoadResult load() const;

  /// True when either checkpoint file exists on disk.
  bool has_checkpoint() const;

  std::uint64_t commits() const { return commits_; }
  const std::string& directory() const { return directory_; }
  std::string current_path() const;
  std::string previous_path() const;

 private:
  std::string directory_;
  std::uint64_t commits_ = 0;
};

}  // namespace runtime
