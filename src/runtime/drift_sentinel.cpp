#include "runtime/drift_sentinel.hpp"

#include <algorithm>

namespace runtime {

const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDrifting: return "drifting";
    case HealthState::kRetraining: return "retraining";
    case HealthState::kDegraded: return "degraded";
  }
  return "unknown";
}

DriftSentinel::DriftSentinel(std::size_t num_clusters, DriftConfig config)
    : config_(config), state_(num_clusters) {}

bool DriftSentinel::observe(std::size_t cluster, double distance) {
  ClusterState& s = state_[cluster];
  if (s.alarmed) return false;
  ++s.n;
  // Running mean first, excursion second: a sample only contributes the
  // part of its deviation the mean has not already absorbed.
  s.mean += (distance - s.mean) / static_cast<double>(s.n);
  s.cumulative += distance - s.mean - config_.delta;
  s.cumulative_min = std::min(s.cumulative_min, s.cumulative);
  if (s.n < config_.min_samples) return false;
  if (s.cumulative - s.cumulative_min > config_.lambda) {
    s.alarmed = true;
    ++alarms_;
    return true;
  }
  return false;
}

void DriftSentinel::reset(std::size_t cluster) {
  state_[cluster] = ClusterState{};
}

void DriftSentinel::reset_all() {
  for (std::size_t c = 0; c < state_.size(); ++c) reset(c);
}

double DriftSentinel::statistic(std::size_t cluster) const {
  const ClusterState& s = state_[cluster];
  return s.cumulative - s.cumulative_min;
}

}  // namespace runtime
