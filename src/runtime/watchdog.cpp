#include "runtime/watchdog.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace runtime {

Watchdog::Watchdog(WatchdogConfig config) : config_(config) {}

void Watchdog::bind_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metric_restarts_ = nullptr;
    metric_stalls_ = nullptr;
    return;
  }
  metric_restarts_ = registry->counter("runtime_restarts_total");
  metric_stalls_ = registry->counter("runtime_stalls_total");
}

Watchdog::Action Watchdog::poll(std::uint64_t now_ns,
                                std::uint64_t completed_frames,
                                bool work_pending) {
  if (gave_up_) return Action::kNone;
  if (!primed_ || completed_frames > last_completed_ || !work_pending) {
    // Progress (or nothing to do): the stall clock restarts here, and any
    // completed frame proves the stage alive, ending the restart streak.
    if (primed_ && completed_frames > last_completed_) streak_ = 0;
    last_completed_ = completed_frames;
    last_progress_ns_ = now_ns;
    primed_ = true;
    return Action::kNone;
  }
  if (now_ns < backoff_until_ns_) return Action::kNone;
  if (now_ns - last_progress_ns_ < config_.stall_timeout_ns) {
    return Action::kNone;
  }
  ++stalls_;
  if (metric_stalls_ != nullptr) metric_stalls_->add();
  if (streak_ >= config_.max_restarts) {
    gave_up_ = true;
    return Action::kGiveUp;
  }
  return Action::kRestart;
}

void Watchdog::notify_restarted(std::uint64_t now_ns) {
  ++streak_;
  ++restarts_total_;
  if (metric_restarts_ != nullptr) metric_restarts_->add();
  backoff_ns_ = backoff_ns_ == 0
                    ? config_.initial_backoff_ns
                    : std::min(backoff_ns_ * 2, config_.max_backoff_ns);
  backoff_until_ns_ = now_ns + backoff_ns_;
  last_progress_ns_ = now_ns;
}

}  // namespace runtime
