#include "runtime/supervisor.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <utility>

#include "core/detector.hpp"
#include "core/extractor.hpp"
#include "obs/metrics.hpp"
#include "pipeline/counters.hpp"

namespace runtime {
namespace {

/// FNV-1a fold (determinism, not cryptography) — same discipline as the
/// scenario fingerprints: run-to-run comparison only, never golden
/// constants.
std::uint64_t fnv1a_u64(std::uint64_t hash, std::uint64_t value) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(&value);
  for (std::size_t i = 0; i < sizeof(value); ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// One code per way a frame can end, for the fingerprint.
std::uint64_t outcome_code(const pipeline::FrameResult& r) {
  if (r.dropped) return 1;
  if (r.worker_error) return 2;
  if (r.extract_error != vprofile::ExtractError::kNone) {
    return 16 + static_cast<std::uint64_t>(r.extract_error);
  }
  return 32 + static_cast<std::uint64_t>(r.detection->verdict);
}

void add_snapshot(pipeline::CountersSnapshot& into,
                  const pipeline::CountersSnapshot& from) {
  into.submitted += from.submitted;
  into.completed += from.completed;
  into.dropped += from.dropped;
  into.worker_errors += from.worker_errors;
  into.extract_ns += from.extract_ns;
  into.detect_ns += from.detect_ns;
  if (from.queue_high_watermark > into.queue_high_watermark) {
    into.queue_high_watermark = from.queue_high_watermark;
  }
  for (std::size_t i = 0; i < into.extract_errors.size(); ++i) {
    into.extract_errors[i] += from.extract_errors[i];
  }
  for (std::size_t i = 0; i < into.verdicts.size(); ++i) {
    into.verdicts[i] += from.verdicts[i];
  }
}

void add_gate_stats(vprofile::GatedUpdateStats& into,
                    const vprofile::GatedUpdateStats& from) {
  into.accepted += from.accepted;
  into.rejected_verdict += from.rejected_verdict;
  into.rejected_margin += from.rejected_margin;
  into.refused_by_updater += from.refused_by_updater;
}

/// Verdict-code -> name table for the flight recorder (obs/ renders
/// producer enums through tables so it never depends on the detector).
const char* const* verdict_name_table() {
  static const std::array<const char*, vprofile::kNumVerdicts> table = [] {
    std::array<const char*, vprofile::kNumVerdicts> t{};
    for (std::size_t i = 0; i < t.size(); ++i) {
      t[i] = vprofile::to_string(static_cast<vprofile::Verdict>(i));
    }
    return t;
  }();
  return table.data();
}

const char* const* extract_error_name_table() {
  static const std::array<const char*, pipeline::kNumExtractErrors> table =
      [] {
        std::array<const char*, pipeline::kNumExtractErrors> t{};
        for (std::size_t i = 0; i < t.size(); ++i) {
          t[i] = vprofile::to_string(static_cast<vprofile::ExtractError>(i));
        }
        return t;
      }();
  return table.data();
}

/// Shortest round-trippable rendering; non-finite values become quoted
/// strings ("inf"/"-inf"/"nan") so bundle context stays valid JSON — the
/// same convention the flight recorder uses for evidence features.
void append_json_double(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "\"nan\"";
    return;
  }
  if (std::isinf(v)) {
    out += std::signbit(v) ? "\"-inf\"" : "\"inf\"";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_json_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

/// Flattens one handled result into the recorder's fixed-size row.
obs::EvidenceRecord make_evidence(const pipeline::FrameResult& r,
                                  std::uint64_t tick_ns,
                                  std::uint32_t generation) {
  obs::EvidenceRecord rec;
  rec.seq = r.seq;
  rec.tick_ns = tick_ns;
  rec.sa = r.sa;
  rec.dropped = r.dropped;
  rec.worker_error = r.worker_error;
  rec.extract_error = static_cast<std::uint8_t>(r.extract_error);
  rec.model_generation = generation;
  if (r.detection.has_value()) {
    const vprofile::Detection& det = *r.detection;
    rec.verdict = static_cast<std::uint8_t>(det.verdict);
    rec.min_distance = det.min_distance;
    rec.confidence = det.confidence;
    if (det.expected_cluster.has_value()) {
      rec.expected_cluster = static_cast<std::int32_t>(*det.expected_cluster);
    }
    if (det.predicted_cluster.has_value()) {
      rec.predicted_cluster = static_cast<std::int32_t>(*det.predicted_cluster);
    }
  }
  if (r.edge_set.has_value()) {
    const std::size_t dim =
        std::min(r.edge_set->samples.size(), obs::kMaxEvidenceDim);
    rec.dim = static_cast<std::uint16_t>(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      rec.features[i] = r.edge_set->samples[i];
    }
  }
  return rec;
}

}  // namespace

Supervisor::Supervisor(vprofile::Model model, SupervisorConfig config,
                       ResultSink sink)
    : config_(std::move(config)),
      sink_(std::move(sink)),
      model_(std::make_shared<const vprofile::Model>(std::move(model))),
      watchdog_(config_.watchdog),
      sentinel_(model_->clusters().size(), config_.drift) {
  if (config_.online_update) config_.pipeline.keep_edge_set = true;
  if (config_.validation_holdout_stride == 0) {
    config_.validation_holdout_stride = 1;
  }
  if (!config_.checkpoint_dir.empty()) {
    store_.emplace(config_.checkpoint_dir);
  }
  gates_.reserve(config_.fault_plan.stalls.size());
  for (std::size_t i = 0; i < config_.fault_plan.stalls.size(); ++i) {
    gates_.push_back(std::make_unique<faults::StallGate>());
  }
  if (obs::MetricsRegistry* reg = config_.pipeline.metrics) {
    watchdog_.bind_metrics(reg);
    instruments_.decimated = reg->counter("runtime_frames_decimated_total");
    instruments_.promotions = reg->counter("runtime_promotions_total");
    instruments_.rollbacks = reg->counter("runtime_rollbacks_total");
    instruments_.checkpoints = reg->counter("runtime_checkpoints_total");
    instruments_.drift_alarms = reg->counter("runtime_drift_alarms_total");
    // vprofile-lint: allow(metric-name) — enum-valued state, unitless
    instruments_.health = reg->gauge("runtime_health_state");
    // vprofile-lint: allow(metric-name) — boolean gauge, unitless
    instruments_.governor_active = reg->gauge("runtime_governor_active");
  }
  if (config_.flight_recorder) {
    obs::FlightRecorderConfig rc = config_.recorder;
    rc.verdict_names = verdict_name_table();
    rc.num_verdicts = vprofile::kNumVerdicts;
    rc.extract_error_names = extract_error_name_table();
    rc.num_extract_errors = pipeline::kNumExtractErrors;
    if (rc.metrics == nullptr) rc.metrics = config_.pipeline.metrics;
    if (rc.tracer == nullptr) rc.tracer = config_.pipeline.tracer;
    rc.context_json = [this] { return context_json(); };
    recorder_ = std::make_unique<obs::FlightRecorder>(std::move(rc));
  }
  create_pipeline();
}

Supervisor::~Supervisor() { finish(); }

void Supervisor::create_pipeline() {
  pipeline::PipelineConfig pc = config_.pipeline;
  pc.stage_hook = [this](std::uint64_t seq, const dsp::Trace&) {
    stage_hook(seq);
  };
  pipe_ = std::make_unique<pipeline::DetectionPipeline>(
      *model_, pc,
      [this](pipeline::FrameResult&& r) { handle(std::move(r)); });
}

// Sanctioned hot-path boundary: the supervision control plane is allowed
// to gate, stall and heal the pipeline by design — its cost is the price
// of fault injection, not part of the scoring contract.
// vprofile-lint: cold
void Supervisor::stage_hook(std::uint64_t local_seq) {
  const std::uint64_t global =
      base_seq_.load(std::memory_order_relaxed) + local_seq;
  for (std::size_t i = 0; i < config_.fault_plan.stalls.size(); ++i) {
    if (config_.fault_plan.stalls[i].frame_index != global) continue;
    if (gates_[i]->released()) continue;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++wedged_;
    }
    handled_cv_.notify_all();
    gates_[i]->wait();  // blocks, then throws StallReleased
  }
}

void Supervisor::handle(pipeline::FrameResult&& result) {
  const std::uint64_t global =
      base_seq_.load(std::memory_order_relaxed) + result.seq;
  // Sink consumers see the supervisor's global frame numbering, stable
  // across pipeline restarts.
  result.seq = global;
  bool drift_alarm = false;
  std::uint32_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    generation = static_cast<std::uint32_t>(stats_.promotions);
    ++stats_.frames_handled;
    fingerprint_ = fnv1a_u64(fingerprint_, global);
    fingerprint_ = fnv1a_u64(fingerprint_, outcome_code(result));
    if (result.worker_error) ++stats_.worker_errors;
    if (result.ok()) {
      const vprofile::Detection& det = *result.detection;
      fingerprint_ = fnv1a_u64(
          fingerprint_, std::bit_cast<std::uint64_t>(det.min_distance));
      if (det.expected_cluster && !det.is_degraded()) {
        if (sentinel_.observe(*det.expected_cluster, det.min_distance)) {
          drift_alarm = true;
          ++stats_.drift_alarms;
          if (instruments_.drift_alarms != nullptr) {
            instruments_.drift_alarms->add();
          }
          if (config_.online_update && health_ == HealthState::kHealthy) {
            health_ = HealthState::kDrifting;
            candidate_ = std::make_unique<vprofile::Model>(*model_);
            gated_ = std::make_unique<vprofile::GatedUpdater>(
                candidate_.get(), config_.gate);
            ++stats_.candidates_started;
          }
        }
      }
      if (config_.online_update && det.verdict == vprofile::Verdict::kOk &&
          result.edge_set) {
        // Holdout split: window frames and update frames are disjoint, so
        // validation exercises data the candidate has never absorbed.
        const bool held_out =
            holdout_tick_++ % config_.validation_holdout_stride == 0;
        if (held_out) {
          validation_window_.push_back(*result.edge_set);
          while (validation_window_.size() > config_.validation_window) {
            validation_window_.pop_front();
          }
        } else if (gated_ != nullptr) {
          gated_->consider(*result.edge_set, det);
          if (gated_->stats().accepted >= config_.retrain_batch) {
            validate_candidate_locked();
          }
        }
      }
    }
    if (config_.checkpoint_every != 0 && store_.has_value() &&
        stats_.frames_handled % config_.checkpoint_every == 0) {
      checkpoint_due_ = true;
    }
    ++total_handled_;
  }
  handled_cv_.notify_all();
  if (recorder_ != nullptr) {
    // Outside mu_: record() is lock-free but an armed trigger may emit a
    // bundle here, and bundle context re-enters the supervisor's locked
    // accessors.  handle() is the pipeline's serialized result path, so
    // the recorder's single-writer contract holds.
    recorder_->record(make_evidence(
        result, last_poll_ns_.load(std::memory_order_relaxed), generation));
    if (result.detection.has_value() && result.detection->is_anomaly()) {
      const bool degraded = result.detection->is_degraded();
      recorder_->request_trigger(
          degraded ? obs::IncidentCause::kDegradedVerdict
                   : obs::IncidentCause::kAnomalyVerdict,
          global,
          verdict_name_table()[static_cast<std::size_t>(
              result.detection->verdict)]);
    }
    if (drift_alarm) {
      recorder_->request_trigger(obs::IncidentCause::kDriftAlarm, global,
                                 "drift sentinel alarm");
    }
  }
  if (sink_) sink_(result);
}

void Supervisor::validate_candidate_locked() {
  // The candidate earned a promotion attempt; it must re-classify the
  // held-out benign window without regressions.  The live model called
  // every one of these frames kOk when it stored them, and the holdout
  // split guarantees the candidate never absorbed any of them, so an
  // anomaly here is the candidate's doing.
  std::size_t regressions = 0;
  const vprofile::DetectionConfig& dc = config_.pipeline.detection;
  for (const vprofile::EdgeSet& es : validation_window_) {
    if (vprofile::detect(*candidate_, es, dc).is_anomaly()) ++regressions;
  }
  if (regressions <= config_.validation_max_regressions) {
    pending_promotion_ = std::move(*candidate_);
    health_ = HealthState::kRetraining;  // promotion lands at the next
                                         // control point (a drain boundary)
  } else {
    ++stats_.rollbacks;
    if (instruments_.rollbacks != nullptr) instruments_.rollbacks->add();
    health_ = HealthState::kDegraded;
    if (recorder_ != nullptr) {
      // Arming is one CAS — safe under mu_ (never blocks or re-enters).
      recorder_->request_trigger(obs::IncidentCause::kRetrainRollback,
                                 stats_.frames_handled,
                                 "candidate validation regressions");
    }
  }
  add_gate_stats(gate_accum_, gated_->stats());
  candidate_.reset();
  gated_.reset();
}

std::optional<std::uint64_t> Supervisor::submit(dsp::Trace trace) {
  apply_control();
  std::uint64_t global = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (finished_) return std::nullopt;
    ++stats_.frames_offered;
    if (config_.governor_high_water != 0) {
      const std::size_t depth = pipe_->queue_depth();
      if (!governor_active_ && depth >= config_.governor_high_water) {
        governor_active_ = true;
        if (recorder_ != nullptr) {
          recorder_->request_trigger(obs::IncidentCause::kOverloadShed,
                                     stats_.frames_offered,
                                     "governor high-water crossed");
        }
      } else if (governor_active_ && depth <= config_.governor_low_water) {
        governor_active_ = false;
      }
      if (instruments_.governor_active != nullptr) {
        instruments_.governor_active->set(governor_active_ ? 1 : 0);
      }
      if (governor_active_) {
        const std::uint64_t tick = decimation_counter_++;
        if (config_.decimation_stride == 0 ||
            tick % config_.decimation_stride != 0) {
          ++stats_.frames_decimated;
          if (instruments_.decimated != nullptr) instruments_.decimated->add();
          return std::nullopt;
        }
      }
    }
    // Global index of the frame about to be forwarded: every previously
    // forwarded frame claimed exactly one pipeline seq, across restarts.
    global = expected_results_;
  }
  // Enqueue outside the lock: blocking-mode backpressure must not hold up
  // the result handler.
  pipe_->submit(std::move(trace));
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Every forwarded frame produces exactly one ordered result (scored,
    // worker_error, or dropped-by-queue).
    ++expected_results_;
    ++stats_.frames_submitted;
    if (config_.lockstep) {
      // Wait for the frame's result, or for a visibly wedged worker — a
      // planned stall must hand control back so the caller can drive the
      // watchdog.
      handled_cv_.wait(lock, [&] {
        return total_handled_ >= expected_results_ || wedged_ > 0;
      });
    }
  }
  apply_control();
  return global;
}

void Supervisor::poll(std::uint64_t now_ns) {
  last_poll_ns_.store(now_ns, std::memory_order_relaxed);
  apply_control();
  Watchdog::Action action = Watchdog::Action::kNone;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (finished_) return;
    const pipeline::CountersSnapshot live = pipe_->counters();
    const std::uint64_t completed =
        accumulated_.completed.value() + live.completed.value();
    const bool pending =
        live.submitted.value() > live.completed.value() + live.dropped.value();
    action = watchdog_.poll(now_ns, completed, pending);
    if (action != Watchdog::Action::kNone) ++stats_.stalls_detected;
    if (action == Watchdog::Action::kGiveUp) {
      health_ = HealthState::kDegraded;
    }
  }
  if (action == Watchdog::Action::kRestart ||
      action == Watchdog::Action::kGiveUp) {
    // Either way the wedged stage must be released and the pipeline made
    // whole; give-up additionally pins health at degraded.
    restart_pipeline(std::nullopt);
    watchdog_.notify_restarted(now_ns);
    std::uint64_t handled = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.restarts;
      handled = stats_.frames_handled;
    }
    if (recorder_ != nullptr) {
      recorder_->request_trigger(obs::IncidentCause::kWatchdogRestart, handled,
                                 action == Watchdog::Action::kGiveUp
                                     ? "watchdog gave up"
                                     : "watchdog restart");
    }
  }
}

void Supervisor::trigger_incident(const char* detail) {
  if (recorder_ == nullptr) return;
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = stats_.frames_handled;
  }
  recorder_->request_trigger(obs::IncidentCause::kOperator, seq,
                             detail != nullptr ? detail : "operator request");
}

void Supervisor::release_armed_gates() {
  std::uint64_t forwarded = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    forwarded = expected_results_;
  }
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    if (gates_[i]->released()) continue;
    // A gate whose planned frame was already forwarded either holds the
    // wedged worker right now or will be reached during the drain below;
    // releasing only gates that report entered() races with the worker
    // between its wedged_ increment and gate wait, and a drain against an
    // armed, unreleased gate never returns.  Gates for frames not yet
    // forwarded stay armed.
    if (config_.fault_plan.stalls[i].frame_index < forwarded ||
        gates_[i]->entered()) {
      gates_[i]->release();
    }
  }
}

void Supervisor::accumulate_counters_locked() {
  add_snapshot(accumulated_, pipe_->counters());
  base_seq_.store(accumulated_.submitted.value(), std::memory_order_relaxed);
  wedged_ = 0;
}

void Supervisor::restart_pipeline(std::optional<vprofile::Model> new_model) {
  release_armed_gates();
  pipe_->finish();  // drains: every accepted frame is handled before this
                    // returns, so the swap below is a clean generation cut
  std::lock_guard<std::mutex> lock(mu_);
  accumulate_counters_locked();
  if (new_model.has_value()) {
    model_ = std::make_shared<const vprofile::Model>(std::move(*new_model));
    sentinel_.reset_all();
    validation_window_.clear();
    if (health_ != HealthState::kDegraded) health_ = HealthState::kHealthy;
  }
  pipe_.reset();
  create_pipeline();
}

void Supervisor::apply_control() {
  std::optional<vprofile::Model> promote;
  bool checkpoint = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_promotion_.has_value()) {
      promote = std::move(pending_promotion_);
      pending_promotion_.reset();
    }
    if (checkpoint_due_) {
      checkpoint = true;
      checkpoint_due_ = false;
    }
  }
  if (promote.has_value()) {
    restart_pipeline(std::move(promote));
    checkpoint = true;  // a promoted model is immediately made durable
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.promotions;
    }
    if (instruments_.promotions != nullptr) instruments_.promotions->add();
  }
  if (checkpoint && store_.has_value()) {
    std::string error;
    if (store_->commit(*model_, &error)) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.checkpoints_committed;
      if (instruments_.checkpoints != nullptr) instruments_.checkpoints->add();
    }
  }
  if (instruments_.health != nullptr) {
    instruments_.health->set(static_cast<std::int64_t>(health()));
  }
}

void Supervisor::finish() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (finished_) return;
  }
  apply_control();
  release_armed_gates();
  pipe_->finish();
  std::optional<vprofile::Model> promote;
  {
    std::lock_guard<std::mutex> lock(mu_);
    finished_ = true;
    accumulate_counters_locked();
    // A promotion decided by the very last frames still lands: the drain
    // is complete, so the swap is safe without recreating the pipeline.
    if (pending_promotion_.has_value()) {
      promote = std::move(pending_promotion_);
      pending_promotion_.reset();
    }
  }
  if (promote.has_value()) {
    model_ = std::make_shared<const vprofile::Model>(std::move(*promote));
    if (instruments_.promotions != nullptr) instruments_.promotions->add();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.promotions;
    if (health_ != HealthState::kDegraded) health_ = HealthState::kHealthy;
  }
  if (store_.has_value()) {
    std::string error;
    if (store_->commit(*model_, &error)) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.checkpoints_committed;
      if (instruments_.checkpoints != nullptr) instruments_.checkpoints->add();
    }
  }
  // After the drain: no more records arrive, so an armed/open incident is
  // emitted now with whatever post-window it collected.  mu_ is not held
  // (the bundle context callback takes it).
  if (recorder_ != nullptr) recorder_->flush();
}

std::string Supervisor::context_json() const {
  // Deterministic fields only: wall-time totals (extract_ns/detect_ns)
  // and the queue high-water mark vary run to run, and bundles must stay
  // byte-stable under lockstep replay.
  const pipeline::CountersSnapshot counters = pipeline_counters();
  SupervisorStats s;
  HealthState health_now;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = stats_;
    s.gate = gate_accum_;
    if (gated_ != nullptr) add_gate_stats(s.gate, gated_->stats());
    health_now = health_;
  }
  const vprofile::DetectionConfig& dc = config_.pipeline.detection;
  std::string out = "{\"detection\":{\"margin\":";
  append_json_double(out, dc.margin);
  out += ",\"saturation_code\":";
  append_json_double(out, dc.saturation_code);
  out += ",\"dead_code\":";
  append_json_double(out, dc.dead_code);
  out += ",\"degraded_fraction\":";
  append_json_double(out, dc.degraded_fraction);
  out += ",\"flat_run_min\":";
  append_json_u64(out, dc.flat_run_min);
  out += "},\"counters\":{\"submitted\":";
  append_json_u64(out, counters.submitted.value());
  out += ",\"completed\":";
  append_json_u64(out, counters.completed.value());
  out += ",\"dropped\":";
  append_json_u64(out, counters.dropped.value());
  out += ",\"worker_errors\":";
  append_json_u64(out, counters.worker_errors);
  out += ",\"extract_errors\":[";
  for (std::size_t i = 0; i < counters.extract_errors.size(); ++i) {
    if (i != 0) out += ',';
    append_json_u64(out, counters.extract_errors[i]);
  }
  out += "],\"verdicts\":[";
  for (std::size_t i = 0; i < counters.verdicts.size(); ++i) {
    if (i != 0) out += ',';
    append_json_u64(out, counters.verdicts[i]);
  }
  out += "]},\"supervisor\":{\"health\":\"";
  out += to_string(health_now);
  out += "\",\"frames_offered\":";
  append_json_u64(out, s.frames_offered);
  out += ",\"frames_submitted\":";
  append_json_u64(out, s.frames_submitted);
  out += ",\"frames_decimated\":";
  append_json_u64(out, s.frames_decimated);
  out += ",\"frames_handled\":";
  append_json_u64(out, s.frames_handled);
  out += ",\"restarts\":";
  append_json_u64(out, s.restarts);
  out += ",\"stalls_detected\":";
  append_json_u64(out, s.stalls_detected);
  out += ",\"drift_alarms\":";
  append_json_u64(out, s.drift_alarms);
  out += ",\"candidates_started\":";
  append_json_u64(out, s.candidates_started);
  out += ",\"promotions\":";
  append_json_u64(out, s.promotions);
  out += ",\"rollbacks\":";
  append_json_u64(out, s.rollbacks);
  out += ",\"checkpoints_committed\":";
  append_json_u64(out, s.checkpoints_committed);
  out += ",\"gate\":{\"accepted\":";
  append_json_u64(out, s.gate.accepted);
  out += ",\"rejected_verdict\":";
  append_json_u64(out, s.gate.rejected_verdict);
  out += ",\"rejected_margin\":";
  append_json_u64(out, s.gate.rejected_margin);
  out += ",\"refused_by_updater\":";
  append_json_u64(out, s.gate.refused_by_updater);
  out += "}}}";
  return out;
}

HealthState Supervisor::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  return health_;
}

SupervisorStats Supervisor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SupervisorStats s = stats_;
  s.gate = gate_accum_;
  if (gated_ != nullptr) add_gate_stats(s.gate, gated_->stats());
  return s;
}

pipeline::CountersSnapshot Supervisor::pipeline_counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  pipeline::CountersSnapshot snap = accumulated_;
  if (pipe_ != nullptr && !finished_) add_snapshot(snap, pipe_->counters());
  return snap;
}

std::uint64_t Supervisor::fingerprint() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t h = fnv1a_u64(fingerprint_, stats_.frames_decimated);
  h = fnv1a_u64(h, stats_.promotions);
  h = fnv1a_u64(h, stats_.rollbacks);
  return h;
}

}  // namespace runtime
