#include "runtime/checkpoint.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "io/atomic_file.hpp"
#include "io/checksum.hpp"
#include "io/model_store.hpp"

namespace runtime {
namespace {

namespace fs = std::filesystem;

/// Cheap integrity probe: does the file end in a valid CRC-32 footer over
/// its own body?  (Checkpoints are always written by us, so they always
/// carry the version-2 footer; no need to parse the whole model here.)
bool file_crc_ok(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  constexpr std::size_t kFooterLen = 15;  // "crc32 " + 8 hex + '\n'
  if (content.size() < kFooterLen) return false;
  const std::string footer = content.substr(content.size() - kFooterLen);
  if (footer.compare(0, 6, "crc32 ") != 0 || footer.back() != '\n') {
    return false;
  }
  std::uint32_t stored = 0;
  if (!io::parse_crc32_hex(footer.substr(6, 8), &stored)) return false;
  return io::crc32(content.data(), content.size() - kFooterLen) == stored;
}

}  // namespace

CheckpointStore::CheckpointStore(std::string directory)
    : directory_(std::move(directory)) {}

std::string CheckpointStore::current_path() const {
  return (fs::path(directory_) / "model.vpm").string();
}

std::string CheckpointStore::previous_path() const {
  return (fs::path(directory_) / "model.prev.vpm").string();
}

bool CheckpointStore::commit(const vprofile::Model& model,
                             std::string* error) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create checkpoint directory '" + directory_ +
               "': " + ec.message();
    }
    return false;
  }
  std::ostringstream payload;
  if (!io::save_model(model, payload)) {
    if (error != nullptr) *error = "model serialization failed";
    return false;
  }
  const std::string current = current_path();
  // Rotate only an *intact* current checkpoint into the last-good slot: a
  // corrupt file must never displace the copy we could still recover from.
  if (fs::exists(current, ec) && file_crc_ok(current)) {
    fs::rename(current, previous_path(), ec);
    if (ec) {
      if (error != nullptr) {
        *error = "checkpoint rotation failed: " + ec.message();
      }
      return false;
    }
  }
  if (!io::atomic_write_file(current, payload.str(), error)) return false;
  ++commits_;
  return true;
}

CheckpointStore::LoadResult CheckpointStore::load() const {
  LoadResult result;
  std::string current_error;
  if (auto m = io::load_model_file(current_path(), &current_error)) {
    result.model = std::move(m);
    return result;
  }
  std::string previous_error;
  if (auto m = io::load_model_file(previous_path(), &previous_error)) {
    result.model = std::move(m);
    result.recovered_last_good = true;
    result.error = current_error;
    return result;
  }
  result.error = "latest: " + current_error + "; last-good: " + previous_error;
  return result;
}

bool CheckpointStore::has_checkpoint() const {
  std::error_code ec;
  return fs::exists(current_path(), ec) || fs::exists(previous_path(), ec);
}

}  // namespace runtime
