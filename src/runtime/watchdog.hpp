// Stall watchdog for the supervised detection pipeline.
//
// Liveness is judged from *progress*, never from wall-clock sampling
// inside the workers: the supervisor feeds poll() the completed-frame
// count and whether work is pending, plus an externally supplied
// timestamp.  Time only ever enters through poll(now_ns), so tests drive
// the watchdog on virtual time and the verdict stream stays a pure
// function of the inputs.
//
// Restart discipline: a stalled stage earns a restart, each restart doubles
// the backoff window (bounded), and progress resets the streak.  Past
// max_restarts the watchdog gives up and the supervisor degrades instead
// of thrashing.
#pragma once

#include <cstdint>

namespace obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace obs

namespace runtime {

struct WatchdogConfig {
  /// No completed-frame progress for this long, with work pending, counts
  /// as a stall.
  std::uint64_t stall_timeout_ns = 2'000'000'000;
  /// Backoff window after the first restart; doubles per restart in the
  /// current streak, clamped to max_backoff_ns.
  std::uint64_t initial_backoff_ns = 100'000'000;
  std::uint64_t max_backoff_ns = 10'000'000'000;
  /// Consecutive restarts (no intervening progress) before giving up.
  std::uint32_t max_restarts = 8;
};

class Watchdog {
 public:
  enum class Action {
    kNone,     // healthy, or backing off
    kRestart,  // stalled: restart the pipeline now
    kGiveUp,   // restart budget exhausted: degrade instead
  };

  explicit Watchdog(WatchdogConfig config);

  /// Mirrors restarts/stalls into `runtime_restarts_total` /
  /// `runtime_stalls_total`.  Null detaches.
  void bind_metrics(obs::MetricsRegistry* registry);

  /// One supervision tick.  `completed_frames` is the pipeline's monotone
  /// completed count (restart-adjusted by the caller); `work_pending` is
  /// whether any accepted frame is still unscored.
  Action poll(std::uint64_t now_ns, std::uint64_t completed_frames,
              bool work_pending);

  /// The supervisor finished a restart; starts the backoff window.
  void notify_restarted(std::uint64_t now_ns);

  std::uint32_t restarts() const { return restarts_total_; }
  std::uint32_t restart_streak() const { return streak_; }
  std::uint64_t stalls_detected() const { return stalls_; }
  std::uint64_t current_backoff_ns() const { return backoff_ns_; }

 private:
  WatchdogConfig config_;
  std::uint64_t last_progress_ns_ = 0;
  std::uint64_t last_completed_ = 0;
  std::uint64_t backoff_until_ns_ = 0;
  std::uint64_t backoff_ns_ = 0;
  std::uint32_t streak_ = 0;
  std::uint32_t restarts_total_ = 0;
  std::uint64_t stalls_ = 0;
  bool primed_ = false;
  bool gave_up_ = false;
  obs::Counter* metric_restarts_ = nullptr;
  obs::Counter* metric_stalls_ = nullptr;
};

}  // namespace runtime
