// Concept-drift sentinel over per-cluster Mahalanobis distance streams.
//
// A healthy bus produces distances that hover around the training
// distribution; environmental drift (temperature, battery sag) and slow
// adversarial poisoning both show up as a sustained upward shift long
// before frames start crossing the detection threshold.  The sentinel
// runs a Page–Hinkley test per cluster: it tracks the running mean of the
// distances and accumulates how far recent samples sit above that mean
// (minus a tolerance delta); when the accumulated excursion exceeds
// lambda, the cluster is drifting.
//
// The sentinel is purely statistical — it raises alarms.  The supervisor
// owns the health state machine (healthy -> drifting -> retraining ->
// degraded) that acts on them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace runtime {

/// Supervisor health, escalated on drift alarms and recovery outcomes.
enum class HealthState {
  kHealthy,     // distances stationary, model trusted
  kDrifting,    // sentinel alarm: collecting a retrain candidate
  kRetraining,  // candidate full: validating against held-back frames
  kDegraded,    // recovery failed (rollback / restart budget exhausted)
};

const char* to_string(HealthState state);

struct DriftConfig {
  /// Page–Hinkley tolerance: upward shifts smaller than delta (per
  /// sample, in distance units) are treated as noise.
  double delta = 0.05;
  /// Alarm threshold on the accumulated excursion.
  double lambda = 25.0;
  /// Samples a cluster must see before it can alarm (the running mean is
  /// meaningless earlier).
  std::uint64_t min_samples = 64;
};

class DriftSentinel {
 public:
  DriftSentinel(std::size_t num_clusters, DriftConfig config);

  /// Feeds one classified frame's distance.  Returns true when this
  /// sample pushes the cluster's Page–Hinkley statistic over lambda (the
  /// alarm latches until reset()).
  bool observe(std::size_t cluster, double distance);

  /// Clears one cluster's test state (after a promoted retrain: the new
  /// model defines a new stationary regime).
  void reset(std::size_t cluster);
  void reset_all();

  bool alarmed(std::size_t cluster) const { return state_[cluster].alarmed; }
  /// Current excursion m_t - min(m_t); the alarm fires at lambda.
  double statistic(std::size_t cluster) const;
  std::uint64_t alarms_total() const { return alarms_; }

 private:
  struct ClusterState {
    std::uint64_t n = 0;
    double mean = 0.0;
    double cumulative = 0.0;  // m_t: sum of (x_i - mean_i - delta)
    double cumulative_min = 0.0;
    bool alarmed = false;
  };

  DriftConfig config_;
  std::vector<ClusterState> state_;
  std::uint64_t alarms_ = 0;
};

}  // namespace runtime
