// Re-orders results completed out of order back into capture order.
//
// Workers finish whenever they finish; verdict consumers (logging, the
// confusion matrix, a downstream fusion IDS) need the stream in the order
// the frames hit the bus.  The collector buffers results keyed by sequence
// number and invokes the sink for every contiguous run starting at the
// next expected sequence.  The sink runs under the collector's lock, which
// is exactly what makes emission totally ordered — sinks should therefore
// be cheap (append to a vector, update counters); anything expensive
// belongs in the worker stage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <utility>

namespace pipeline {

template <typename T>
class OrderedCollector {
 public:
  using Sink = std::function<void(T&&)>;

  explicit OrderedCollector(Sink sink) : sink_(std::move(sink)) {}

  /// Hands over the result for `seq`.  Sequences must be dense (every seq
  /// in [0, N) submitted exactly once) or the stream stalls at the gap.
  /// Sanctioned hot-path boundary: ordered emission serializes here.
  // vprofile-lint: cold
  void submit(std::uint64_t seq, T value) {
    std::lock_guard<std::mutex> lock(mu_);
    if (seq == next_) {
      sink_(std::move(value));
      ++next_;
      // Flush everything the arrival unblocked.
      for (auto it = buffer_.begin();
           it != buffer_.end() && it->first == next_;
           it = buffer_.erase(it), ++next_) {
        sink_(std::move(it->second));
      }
    } else {
      buffer_.emplace(seq, std::move(value));
    }
  }

  /// Results parked while waiting for an earlier sequence.
  std::size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return buffer_.size();
  }

  /// Next sequence the sink is waiting for (== total emitted so far).
  std::uint64_t next_expected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::uint64_t, T> buffer_;
  std::uint64_t next_ = 0;
  Sink sink_;
};

}  // namespace pipeline
