// Bounded blocking ring queue — the hand-off between capture and the
// detection workers.
//
// A fixed-capacity ring of slots guarded by one mutex and two condition
// variables.  Producers either block when the ring is full (backpressure,
// the default for lossless scoring) or fail fast so the caller can count a
// drop (a live monitor must never stall the bus tap).  close() makes the
// queue drain-then-stop: pushes fail immediately, pops keep succeeding
// until the ring is empty and only then report exhaustion.  That property
// is what the pipeline's shutdown test relies on: no frame accepted before
// close() is ever lost, and none is delivered twice.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace pipeline {

template <typename T>
class RingQueue {
 public:
  /// Throws std::invalid_argument on zero capacity.
  explicit RingQueue(std::size_t capacity) : slots_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("RingQueue: capacity must be > 0");
    }
  }

  RingQueue(const RingQueue&) = delete;
  RingQueue& operator=(const RingQueue&) = delete;

  /// Blocks while the queue is full.  Returns false iff the queue was
  /// closed (the value is discarded).
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return count_ < slots_.size() || closed_; });
    if (closed_) return false;
    emplace_locked(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push.  Returns false when the queue is full or closed;
  /// the caller decides whether that is a drop.
  bool try_push(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || count_ == slots_.size()) return false;
      emplace_locked(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty.  Returns std::nullopt only once the
  /// queue is closed *and* fully drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return count_ > 0 || closed_; });
    if (count_ == 0) return std::nullopt;  // closed and drained
    T value = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --count_;
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Batched pop: blocks for the first value like pop(), then drains up to
  /// `max` values total without further waiting — the hand-off for batched
  /// scoring (one wait buys a whole SoA batch when the producer is ahead,
  /// and degrades to per-item behavior when it is not).  Clears and fills
  /// `*out`; returns the number popped, 0 only once closed and drained.
  /// Sanctioned hot-path boundary: the one place a worker may block.
  // vprofile-lint: cold
  std::size_t pop_some(std::vector<T>* out, std::size_t max) {
    out->clear();
    if (max == 0) max = 1;
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return count_ > 0 || closed_; });
    if (count_ == 0) return 0;  // closed and drained
    const std::size_t take = std::min(max, count_);
    for (std::size_t k = 0; k < take; ++k) {
      out->push_back(std::move(slots_[head_]));
      head_ = (head_ + 1) % slots_.size();
    }
    count_ -= take;
    lock.unlock();
    // Several slots may have freed at once; wake every blocked producer.
    not_full_.notify_all();
    return take;
  }

  /// Stops intake.  Queued values remain poppable; blocked producers and
  /// (once drained) blocked consumers wake up.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Largest occupancy ever observed right after a push — the pipeline's
  /// queue-depth gauge.
  std::size_t high_watermark() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_watermark_;
  }

 private:
  void emplace_locked(T value) {
    slots_[(head_ + count_) % slots_.size()] = std::move(value);
    ++count_;
    if (count_ > high_watermark_) high_watermark_ = count_;
  }

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t high_watermark_ = 0;
  bool closed_ = false;
};

}  // namespace pipeline
