#include "pipeline/pipeline.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace pipeline {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

/// The one scoring routine both the workers and the sequential reference
/// run — sharing it is what makes pipeline-vs-sequential equivalence a
/// property of the code rather than a hope.
FrameResult score_frame(const vprofile::Model& model, const dsp::Trace& trace,
                        const vprofile::DetectionConfig& dc,
                        std::uint64_t* extract_ns, std::uint64_t* detect_ns) {
  FrameResult result;
  const auto t0 = Clock::now();
  vprofile::ExtractError err = vprofile::ExtractError::kNone;
  const auto edge_set =
      vprofile::extract_edge_set(trace, model.extraction(), &err);
  const auto t1 = Clock::now();
  *extract_ns = ns_between(t0, t1);
  if (!edge_set) {
    result.extract_error = err;
    *detect_ns = 0;
    return result;
  }
  result.sa = edge_set->sa;
  result.detection = vprofile::detect(model, *edge_set, dc);
  *detect_ns = ns_between(t1, Clock::now());
  return result;
}

}  // namespace

DetectionPipeline::DetectionPipeline(const vprofile::Model& model,
                                     PipelineConfig config, ResultSink sink)
    : model_(model),
      config_(config),
      queue_(config.queue_capacity),
      collector_(std::move(sink)) {
  if (config_.num_workers == 0) {
    throw std::invalid_argument("DetectionPipeline: need at least one worker");
  }
  workers_.reserve(config_.num_workers);
  for (std::size_t i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

DetectionPipeline::~DetectionPipeline() { finish(); }

std::optional<std::uint64_t> DetectionPipeline::submit(dsp::Trace trace) {
  // One lock covers seq assignment *and* the enqueue/drop decision, so the
  // collector always sees a dense sequence space: every assigned seq is
  // either in the queue or already emitted as dropped.  Backpressure in
  // blocking mode stalls all producers here, which is the intent.
  std::lock_guard<std::mutex> lock(submit_mu_);
  if (finished_) return std::nullopt;
  const std::uint64_t seq = next_seq_;
  Job job{seq, std::move(trace)};
  bool accepted;
  if (config_.block_when_full) {
    accepted = queue_.push(std::move(job));
  } else {
    accepted = queue_.try_push(std::move(job));
  }
  ++next_seq_;
  counters_.add_submitted();
  if (accepted) return seq;

  counters_.add_dropped();
  FrameResult dropped;
  dropped.seq = seq;
  dropped.dropped = true;
  collector_.submit(seq, std::move(dropped));
  return std::nullopt;
}

void DetectionPipeline::finish() {
  {
    std::lock_guard<std::mutex> lock(submit_mu_);
    finished_ = true;
  }
  queue_.close();
  // Serialize joining so concurrent finish() calls are safe: the second
  // caller blocks here until the first has joined everything, then sees
  // every worker unjoinable.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

CountersSnapshot DetectionPipeline::counters() const {
  return counters_.snapshot(queue_.high_watermark());
}

void DetectionPipeline::worker_loop() {
  while (auto job = queue_.pop()) {
    std::uint64_t extract_ns = 0;
    std::uint64_t detect_ns = 0;
    FrameResult result =
        score_frame(model_, job->trace, config_.detection, &extract_ns,
                    &detect_ns);
    result.seq = job->seq;
    counters_.add_completed(extract_ns, detect_ns);
    counters_.add_outcome(result.extract_error, result.detection);
    collector_.submit(job->seq, std::move(result));
  }
}

std::vector<FrameResult> score_sequential(
    const vprofile::Model& model, const std::vector<dsp::Trace>& traces,
    const vprofile::DetectionConfig& dc) {
  std::vector<FrameResult> results;
  results.reserve(traces.size());
  std::uint64_t seq = 0;
  for (const dsp::Trace& trace : traces) {
    std::uint64_t extract_ns = 0;
    std::uint64_t detect_ns = 0;
    FrameResult r = score_frame(model, trace, dc, &extract_ns, &detect_ns);
    r.seq = seq++;
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace pipeline
