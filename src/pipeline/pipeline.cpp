#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"

namespace pipeline {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

/// The one scoring routine both the workers and the sequential reference
/// run — sharing it is what makes pipeline-vs-sequential equivalence a
/// property of the code rather than a hope.
FrameResult score_frame(const vprofile::Model& model, const dsp::Trace& trace,
                        const vprofile::DetectionConfig& dc,
                        bool keep_edge_set, std::uint64_t* extract_ns,
                        std::uint64_t* detect_ns) {
  FrameResult result;
  const auto t0 = Clock::now();
  vprofile::ExtractError err = vprofile::ExtractError::kNone;
  auto edge_set = vprofile::extract_edge_set(trace, model.extraction(), &err);
  const auto t1 = Clock::now();
  *extract_ns = ns_between(t0, t1);
  if (!edge_set) {
    result.extract_error = err;
    *detect_ns = 0;
    return result;
  }
  result.sa = edge_set->sa;
  result.detection = vprofile::detect(model, *edge_set, dc);
  *detect_ns = ns_between(t1, Clock::now());
  if (keep_edge_set) result.edge_set = std::move(*edge_set);
  return result;
}

}  // namespace

DetectionPipeline::DetectionPipeline(const vprofile::Model& model,
                                     PipelineConfig config, ResultSink sink)
    : model_(model),
      config_(config),
      plan_(model, config.backend),
      queue_(config.queue_capacity),
      collector_(std::move(sink)) {
  if (config_.num_workers == 0) {
    throw std::invalid_argument("DetectionPipeline: need at least one worker");
  }
  if (config_.metrics != nullptr) {
    // Resolve every fixed series up front: the registry mutex is paid
    // here, once, and the workers only ever touch lock-free handles.
    obs::MetricsRegistry& reg = *config_.metrics;
    obs_.submitted = reg.counter("frames_submitted_total");
    obs_.completed = reg.counter("frames_completed_total");
    obs_.dropped = reg.counter("frames_dropped_total");
    obs_.errors = reg.counter("errors_total");
    obs_.extract_latency = reg.histogram("extract_latency_ns");
    obs_.detect_latency = reg.histogram("detect_latency_ns");
    // vprofile-lint: allow(metric-name) — depth is unitless by design
    obs_.queue_depth = reg.gauge("queue_depth");
  }
  workers_.reserve(config_.num_workers);
  for (std::size_t i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

DetectionPipeline::~DetectionPipeline() { finish(); }

// Producer-side entry, not part of the worker hot cone (the name-matched
// call graph would otherwise conflate it with OrderedCollector::submit).
// vprofile-lint: cold
std::optional<std::uint64_t> DetectionPipeline::submit(dsp::Trace trace) {
  obs::TraceSpan span(config_.tracer, "pipeline.submit");
  // One lock covers seq assignment *and* the enqueue/drop decision, so the
  // collector always sees a dense sequence space: every assigned seq is
  // either in the queue or already emitted as dropped.  Backpressure in
  // blocking mode stalls all producers here, which is the intent.
  std::lock_guard<std::mutex> lock(submit_mu_);
  if (finished_) return std::nullopt;
  const std::uint64_t seq = next_seq_;
  Job job{seq, std::move(trace),
          config_.tracer != nullptr ? config_.tracer->now_ns() : 0};
  bool accepted;
  if (config_.block_when_full) {
    accepted = queue_.push(std::move(job));
  } else {
    accepted = queue_.try_push(std::move(job));
  }
  ++next_seq_;
  counters_.add_submitted();
  if (obs_.submitted != nullptr) {
    obs_.submitted->add();
    obs_.queue_depth->set(static_cast<std::int64_t>(queue_.size()));
  }
  if (accepted) return seq;

  counters_.add_dropped();
  if (obs_.dropped != nullptr) obs_.dropped->add();
  FrameResult dropped;
  dropped.seq = seq;
  dropped.dropped = true;
  collector_.submit(seq, std::move(dropped));
  return std::nullopt;
}

void DetectionPipeline::finish() {
  {
    std::lock_guard<std::mutex> lock(submit_mu_);
    finished_ = true;
  }
  queue_.close();
  // Serialize joining so concurrent finish() calls are safe: the second
  // caller blocks here until the first has joined everything, then sees
  // every worker unjoinable.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Drained means conserved: every submitted frame is now completed or
  // dropped and every completed frame has exactly one outcome.  This is
  // the pipeline's core accounting invariant — enforced unconditionally
  // (assert() is compiled out in the default RelWithDebInfo build).
  const CountersSnapshot snap = counters_.snapshot();
  if (!snap.consistent()) {
    std::fprintf(stderr,
                 "DetectionPipeline::finish(): counter conservation violated "
                 "(submitted=%llu completed=%llu dropped=%llu "
                 "extract_failures=%llu classified=%llu worker_errors=%llu)\n",
                 static_cast<unsigned long long>(snap.submitted.value()),
                 static_cast<unsigned long long>(snap.completed.value()),
                 static_cast<unsigned long long>(snap.dropped.value()),
                 static_cast<unsigned long long>(snap.extract_failures()),
                 static_cast<unsigned long long>(snap.classified()),
                 static_cast<unsigned long long>(snap.worker_errors));
    std::abort();
  }
}

CountersSnapshot DetectionPipeline::counters() const {
  return counters_.snapshot(queue_.high_watermark());
}

// Sanctioned boundary: the registry mutex is paid at most once per SA
// (first frame from that address); afterwards the atomic cache hits.
// vprofile-lint: cold
obs::Histogram* DetectionPipeline::sa_histogram(std::uint8_t sa) {
  obs::Histogram* h =
      obs_.detect_by_sa[sa].load(std::memory_order_acquire);
  if (h == nullptr) {
    char label[8];
    std::snprintf(label, sizeof(label), "0x%02X", sa);
    h = config_.metrics->histogram("detect_latency_ns", {{"sa", label}});
    // Losing this race is harmless: the registry returned the same
    // pointer to every contender.
    obs_.detect_by_sa[sa].store(h, std::memory_order_release);
  }
  return h;
}

// vprofile-lint: hot
void DetectionPipeline::worker_loop() {
  vprofile::BatchScorer scorer(plan_);
  // Per-batch workspace; reserve once so steady state never allocates for
  // batch bookkeeping (the EdgeSets themselves still come from extraction).
  struct Slot {
    FrameResult result;
    std::optional<vprofile::EdgeSet> edge_set;
    std::uint64_t extract_ns = 0;
    std::uint64_t detect_ns = 0;
  };
  const std::size_t batch_max = std::max<std::size_t>(1, config_.batch_size);
  std::vector<Job> jobs;
  std::vector<Slot> slots;
  std::vector<const vprofile::EdgeSet*> to_score;
  std::vector<std::size_t> score_slot;  // slot index per to_score entry
  std::vector<vprofile::Detection> detections;
  jobs.reserve(batch_max);
  slots.reserve(batch_max);
  to_score.reserve(batch_max);
  score_slot.reserve(batch_max);
  detections.reserve(batch_max);

  while (queue_.pop_some(&jobs, batch_max) > 0) {
    obs::Tracer* const tracer = config_.tracer;
    const std::uint64_t t_start = tracer != nullptr ? tracer->now_ns() : 0;

    // Stage 1 — per frame: hook + extraction, individually contained.  A
    // throwing stage (extractor bug, hostile input, injected fault) must
    // cost exactly one frame, not the worker — an escaped exception from a
    // std::thread is std::terminate for the whole monitor.
    slots.clear();
    slots.resize(jobs.size());
    to_score.clear();
    score_slot.clear();
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      Job& job = jobs[k];
      Slot& slot = slots[k];
      slot.result.seq = job.seq;
      if (tracer != nullptr && job.submit_ns != 0) {
        tracer->record("pipeline.queue", job.submit_ns,
                       t_start - job.submit_ns);
      }
      try {
        if (config_.stage_hook) config_.stage_hook(job.seq, job.trace);
        const auto t0 = Clock::now();
        vprofile::ExtractError err = vprofile::ExtractError::kNone;
        slot.edge_set =
            vprofile::extract_edge_set(job.trace, model_.extraction(), &err);
        slot.extract_ns = ns_between(t0, Clock::now());
        if (slot.edge_set) {
          slot.result.sa = slot.edge_set->sa;
          to_score.push_back(&*slot.edge_set);
          score_slot.push_back(k);
        } else {
          slot.result.extract_error = err;
        }
      } catch (...) {
        slot = Slot{};
        slot.result.seq = job.seq;
        slot.result.worker_error = true;
      }
    }

    // Stage 2 — the batch: every surviving edge set scored through the
    // shared plan in one SoA pass.  Detection cost is attributed evenly
    // across the batch (remainder to the first frame) — telemetry only,
    // verdicts never depend on timing.
    if (!to_score.empty()) {
      detections.clear();
      detections.resize(to_score.size());
      const auto td0 = Clock::now();
      bool batch_failed = false;
      try {
        scorer.detect(to_score.data(), to_score.size(), config_.detection,
                      detections.data());
      } catch (...) {
        batch_failed = true;
      }
      const std::uint64_t batch_ns = ns_between(td0, Clock::now());
      const std::uint64_t share = batch_ns / to_score.size();
      const std::uint64_t remainder = batch_ns % to_score.size();
      for (std::size_t k = 0; k < to_score.size(); ++k) {
        Slot& slot = slots[score_slot[k]];
        if (batch_failed) {
          const std::uint64_t seq = slot.result.seq;
          slot = Slot{};
          slot.result.seq = seq;
          slot.result.worker_error = true;
          continue;
        }
        slot.detect_ns = share + (k == 0 ? remainder : 0);
        slot.result.detection = detections[k];
        if (config_.keep_edge_set) {
          slot.result.edge_set = std::move(*slot.edge_set);
        }
      }
    }

    // Stage 3 — per frame, in batch order: accounting, instruments, emit.
    for (std::size_t k = 0; k < slots.size(); ++k) {
      Slot& slot = slots[k];
      FrameResult& result = slot.result;
      counters_.add_completed(slot.extract_ns, slot.detect_ns);
      if (result.worker_error) {
        counters_.add_worker_error();
      } else {
        counters_.add_outcome(result.extract_error, result.detection);
      }
      if (obs_.completed != nullptr) {
        obs_.completed->add();
        if (result.worker_error) obs_.errors->add();
        obs_.extract_latency->observe(slot.extract_ns);
        obs_.detect_latency->observe(slot.detect_ns);
        if (result.ok()) sa_histogram(result.sa)->observe(slot.detect_ns);
        obs_.queue_depth->set(static_cast<std::int64_t>(queue_.size()));
      }
      if (tracer != nullptr) {
        // Durations are the worker's own measurements; start offsets are
        // approximate (stages of one batch interleave).
        tracer->record("pipeline.extract", t_start, slot.extract_ns);
        tracer->record("pipeline.detect", t_start + slot.extract_ns,
                       slot.detect_ns);
      }
      obs::TraceSpan collect_span(tracer, "pipeline.collect");
      collector_.submit(result.seq, std::move(result));
    }
  }
}

std::vector<FrameResult> score_sequential(
    const vprofile::Model& model, const std::vector<dsp::Trace>& traces,
    const vprofile::DetectionConfig& dc) {
  std::vector<FrameResult> results;
  results.reserve(traces.size());
  std::uint64_t seq = 0;
  for (const dsp::Trace& trace : traces) {
    std::uint64_t extract_ns = 0;
    std::uint64_t detect_ns = 0;
    FrameResult r =
        score_frame(model, trace, dc, false, &extract_ns, &detect_ns);
    r.seq = seq++;
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace pipeline
