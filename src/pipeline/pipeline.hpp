// Streaming capture -> extract -> detect pipeline.
//
// The batch path (sim::Experiment) scores recorded captures one at a time;
// a deployed vProfile monitor has to keep up with a live bus.  This
// pipeline runs Algorithm 1 + Algorithm 3 on a worker pool behind a
// bounded queue and re-orders verdicts back into capture order:
//
//   submit(trace)                    worker pool                sink
//   ------------- > RingQueue > extract + batched detect > OrderedCollector
//    (seq assigned)  (bounded,        (parallel)            (capture order)
//                    backpressure)
//
// Workers drain the queue in batches (PipelineConfig::batch_size): each
// frame is still extracted (and fault-contained) individually, but the
// surviving edge sets are scored together through a vprofile::BatchScorer
// over one shared ScoringPlan — the SIMD/batched hot path.
//
// Guarantees:
//  * Every submitted frame produces exactly one FrameResult at the sink,
//    in submission order, even when workers finish out of order and even
//    for frames dropped by a full queue in non-blocking mode.
//  * For the float backends (kAuto/kScalar/kAvx2), scoring is bit-identical
//    to calling extract_edge_set() + detect() sequentially: the batch
//    scorer's kernels mirror the one-frame reference operation-for-
//    operation, so nothing about a frame's result depends on scheduling,
//    batch boundaries, or the resolved backend.  (kFixed is the explicit
//    quantized profile and diverges within its documented error bound.)
//  * finish() drains: it stops intake, waits for every accepted frame to
//    be scored and emitted, then joins the workers.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <thread>
#include <vector>

#include "core/batch_scorer.hpp"
#include "core/detector.hpp"
#include "core/extractor.hpp"
#include "core/model.hpp"
#include "linalg/simd_dispatch.hpp"
#include "dsp/trace.hpp"
#include "pipeline/counters.hpp"
#include "pipeline/ordered_collector.hpp"
#include "pipeline/ring_queue.hpp"

namespace obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
class Tracer;
}  // namespace obs

namespace pipeline {

/// Pipeline tuning knobs.
struct PipelineConfig {
  /// Worker threads running extraction + detection.
  std::size_t num_workers = 1;
  /// Ring capacity between submit() and the workers.
  std::size_t queue_capacity = 256;
  /// true: submit() blocks while the queue is full (lossless, offline
  /// scoring).  false: submit() drops the frame and records it (live
  /// monitor that must never stall the tap).
  bool block_when_full = true;
  /// Frames a worker pulls from the queue per wait and scores as one SoA
  /// batch.  1 degrades to the per-frame path; larger batches amortize the
  /// queue hand-off and feed the SIMD kernels full quads.  Verdicts do not
  /// depend on this value (see the bit-identity guarantee above).
  std::size_t batch_size = 8;
  /// Scoring backend request, resolved once at pipeline construction
  /// against the CPU and VPROFILE_FORCE_SCALAR (linalg/simd_dispatch.hpp).
  linalg::simd::Backend backend = linalg::simd::Backend::kAuto;
  vprofile::DetectionConfig detection;
  /// Attach the extracted edge set to each ok() FrameResult.  Off by
  /// default (results stay small); the supervised runtime turns it on so
  /// gated online updates can fold verdict-approved edge sets without
  /// re-extracting.  Scoring is bit-identical either way.
  bool keep_edge_set = false;
  /// Test/fault-injection hook run in the worker before a frame is scored
  /// (runtime fault profiles use it to wedge or crash a stage on cue).  A
  /// throw from the hook — like a throw from any stage — is contained:
  /// the frame becomes a worker_error result and the worker survives.
  /// Null (the default) costs nothing.
  std::function<void(std::uint64_t seq, const dsp::Trace& trace)> stage_hook;
  /// Optional observability sinks; null = zero overhead (scoring is
  /// bit-identical either way — instruments only ever read the results).
  /// Both must outlive the pipeline.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

/// One frame's outcome, emitted in capture order.
struct FrameResult {
  std::uint64_t seq = 0;
  /// Frame rejected by a full queue (non-blocking mode); nothing else set.
  bool dropped = false;
  /// A stage threw while scoring this frame (contained per-frame: the
  /// worker survives, the frame gets this error outcome instead of a
  /// verdict).  Nothing else is set.
  bool worker_error = false;
  /// kNone iff extraction succeeded and `detection` is set.
  vprofile::ExtractError extract_error = vprofile::ExtractError::kNone;
  /// SA decoded from the trace; only valid when ok().
  std::uint8_t sa = 0;
  std::optional<vprofile::Detection> detection;
  /// The scored edge set, retained only when PipelineConfig::keep_edge_set
  /// is on and extraction succeeded.
  std::optional<vprofile::EdgeSet> edge_set;

  bool ok() const {
    return !dropped && !worker_error &&
           extract_error == vprofile::ExtractError::kNone;
  }
  /// Extraction succeeded but the detector refused a confident verdict
  /// (quality gating; see Verdict::kDegraded).
  bool degraded() const { return ok() && detection->is_degraded(); }
};

/// Worker-pool pipeline over one trained model.  The model must outlive
/// the pipeline and is never mutated through it.
class DetectionPipeline {
 public:
  using ResultSink = std::function<void(FrameResult&&)>;

  /// Starts the workers.  The sink is called in strict capture order from
  /// worker threads (serialized by the collector); keep it cheap.  Throws
  /// std::invalid_argument for zero workers.
  DetectionPipeline(const vprofile::Model& model, PipelineConfig config,
                    ResultSink sink);

  /// Drains and joins (finish()) if the caller did not.
  ~DetectionPipeline();

  DetectionPipeline(const DetectionPipeline&) = delete;
  DetectionPipeline& operator=(const DetectionPipeline&) = delete;

  /// Enqueues one message-aligned trace; thread-safe.  Returns the frame's
  /// sequence number, or std::nullopt when the frame was not accepted —
  /// dropped by a full queue in non-blocking mode (still emitted to the
  /// sink as a dropped FrameResult, in order) or refused after finish()
  /// (not emitted: it was never part of the stream).
  std::optional<std::uint64_t> submit(dsp::Trace trace);

  /// Stops intake, waits until every accepted frame has been scored and
  /// emitted, joins the workers.  Idempotent.
  void finish();

  /// Observability.  Stable after finish(); a live approximation before.
  CountersSnapshot counters() const;
  std::size_t queue_depth() const { return queue_.size(); }

  const PipelineConfig& config() const { return config_; }

 private:
  struct Job {
    std::uint64_t seq = 0;
    dsp::Trace trace;
    /// Tracer timestamp at enqueue; 0 when tracing is off.  Lets the
    /// worker emit the queue-wait span without a second submit-side clock.
    std::uint64_t submit_ns = 0;
  };

  /// Pre-registered metric handles, resolved once in the constructor so
  /// the hot path never touches the registry mutex.  All null when
  /// config_.metrics is null.
  struct Instruments {
    obs::Counter* submitted = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* errors = nullptr;
    obs::Histogram* extract_latency = nullptr;
    obs::Histogram* detect_latency = nullptr;
    obs::Gauge* queue_depth = nullptr;
    /// Lazily resolved per-source-address series (detect_latency_ns{sa}).
    /// Benign races: the registry hands every thread the same pointer.
    std::array<std::atomic<obs::Histogram*>, 256> detect_by_sa{};
  };

  obs::Histogram* sa_histogram(std::uint8_t sa);
  void worker_loop();

  const vprofile::Model& model_;
  PipelineConfig config_;
  /// Immutable scoring operands (resolved backend, cached Cholesky
  /// factors, fixed-point quants), shared read-only by every worker's
  /// BatchScorer.  Built once here — "model load" time.
  vprofile::ScoringPlan plan_;
  Counters counters_;
  Instruments obs_;
  RingQueue<Job> queue_;
  OrderedCollector<FrameResult> collector_;
  std::vector<std::thread> workers_;
  std::mutex submit_mu_;  // serializes seq assignment with enqueue/drop
  std::mutex join_mu_;    // serializes worker joining across finish() calls
  std::uint64_t next_seq_ = 0;
  bool finished_ = false;
};

/// Reference single-threaded scoring of a whole batch — the equivalence
/// oracle for the pipeline (and the "sequential" arm of bench_pipeline).
/// Produces exactly the FrameResult stream a 1..N-worker pipeline emits.
std::vector<FrameResult> score_sequential(const vprofile::Model& model,
                                          const std::vector<dsp::Trace>& traces,
                                          const vprofile::DetectionConfig& dc);

}  // namespace pipeline
