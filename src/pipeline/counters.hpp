// Lightweight observability for the streaming pipeline.
//
// All counters are relaxed atomics: they are monitoring data, not
// synchronization, and the hot path must not pay for ordering it does not
// need.  snapshot() gives a coherent-enough view for printing; exact
// cross-counter consistency is only guaranteed after finish().
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "core/detector.hpp"
#include "core/extractor.hpp"
#include "core/units.hpp"

namespace pipeline {

/// Extraction failure kinds tracked separately (kNone excluded).
inline constexpr std::size_t kNumExtractErrors = 4;

/// Plain-value view of the counters at one instant.  Frame tallies are
/// units::FrameCount so they cannot be confused with nanosecond totals or
/// queue depths when fed into derived statistics.
struct CountersSnapshot {
  units::FrameCount submitted{0};  // frames handed to submit()
  units::FrameCount completed{0};  // frames a worker finished scoring
  units::FrameCount dropped{0};    // frames rejected by a full queue
  /// Frames whose scoring threw (contained stage failure) — completed
  /// without a verdict or an extraction-failure kind.
  std::uint64_t worker_errors = 0;
  std::uint64_t extract_ns = 0;  // total wall time in extract_edge_set
  std::uint64_t detect_ns = 0;   // total wall time in detect()
  std::size_t queue_high_watermark = 0;

  /// Per-outcome telemetry: how each completed frame ended.  Indexed by
  /// the ExtractError / Verdict enum values; extract_errors[kNone] stays 0
  /// (successful extractions are counted under verdicts instead).
  std::array<std::uint64_t, kNumExtractErrors> extract_errors{};
  std::array<std::uint64_t, vprofile::kNumVerdicts> verdicts{};

  /// Conservation law of the pipeline: once drained (finish()), every
  /// submitted frame is accounted for as completed or dropped, and every
  /// completed frame ended in exactly one outcome bucket.  Enforced by
  /// DetectionPipeline::finish(); also checkable from tests.
  bool consistent() const {
    return submitted == completed + dropped &&
           completed.value() ==
               extract_failures() + classified() + worker_errors;
  }
  /// Completed frames that produced a verdict (extraction succeeded).
  std::uint64_t classified() const {
    std::uint64_t total = 0;
    for (std::uint64_t v : verdicts) total += v;
    return total;
  }
  std::uint64_t extract_failures() const {
    std::uint64_t total = 0;
    for (std::uint64_t e : extract_errors) total += e;
    return total;
  }
  std::uint64_t verdict(vprofile::Verdict v) const {
    return verdicts[static_cast<std::size_t>(v)];
  }
  /// Frames the detector refused to classify confidently.
  std::uint64_t degraded() const {
    return verdict(vprofile::Verdict::kDegraded);
  }
  std::uint64_t anomalies() const {
    return completed.value() - extract_failures() - worker_errors -
           verdict(vprofile::Verdict::kOk);
  }

  double mean_extract_us() const {
    return completed.value() != 0
               ? static_cast<double>(extract_ns) /
                     static_cast<double>(completed.value()) / 1e3
               : 0.0;
  }
  double mean_detect_us() const {
    return completed.value() != 0
               ? static_cast<double>(detect_ns) /
                     static_cast<double>(completed.value()) / 1e3
               : 0.0;
  }
  /// Throughput over an externally timed interval.
  double frames_per_second(double elapsed_s) const {
    return elapsed_s > 0.0
               ? static_cast<double>(completed.value()) / elapsed_s
               : 0.0;
  }
};

/// Shared mutable counters; one instance per pipeline.
class Counters {
 public:
  void add_submitted() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void add_dropped() { dropped_.fetch_add(1, std::memory_order_relaxed); }
  void add_worker_error() {
    worker_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_completed(std::uint64_t extract_ns, std::uint64_t detect_ns) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    extract_ns_.fetch_add(extract_ns, std::memory_order_relaxed);
    detect_ns_.fetch_add(detect_ns, std::memory_order_relaxed);
  }
  /// Records how a completed frame ended: an extraction failure kind, or
  /// the detection verdict.
  void add_outcome(vprofile::ExtractError err,
                   const std::optional<vprofile::Detection>& detection) {
    if (err != vprofile::ExtractError::kNone) {
      extract_errors_[static_cast<std::size_t>(err)].fetch_add(
          1, std::memory_order_relaxed);
    } else if (detection) {
      verdicts_[static_cast<std::size_t>(detection->verdict)].fetch_add(
          1, std::memory_order_relaxed);
    }
  }

  CountersSnapshot snapshot(std::size_t queue_high_watermark = 0) const {
    CountersSnapshot s;
    s.submitted = units::FrameCount{submitted_.load(std::memory_order_relaxed)};
    s.completed = units::FrameCount{completed_.load(std::memory_order_relaxed)};
    s.dropped = units::FrameCount{dropped_.load(std::memory_order_relaxed)};
    s.worker_errors = worker_errors_.load(std::memory_order_relaxed);
    s.extract_ns = extract_ns_.load(std::memory_order_relaxed);
    s.detect_ns = detect_ns_.load(std::memory_order_relaxed);
    s.queue_high_watermark = queue_high_watermark;
    for (std::size_t i = 0; i < s.extract_errors.size(); ++i) {
      s.extract_errors[i] = extract_errors_[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < s.verdicts.size(); ++i) {
      s.verdicts[i] = verdicts_[i].load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> worker_errors_{0};
  std::atomic<std::uint64_t> extract_ns_{0};
  std::atomic<std::uint64_t> detect_ns_{0};
  std::array<std::atomic<std::uint64_t>, kNumExtractErrors> extract_errors_{};
  std::array<std::atomic<std::uint64_t>, vprofile::kNumVerdicts> verdicts_{};
};

}  // namespace pipeline
