// Common interface for the related-work sender-identification baselines
// the paper compares against (Section 1.2.1): SIMPLE, a Scission-style
// machine-learning classifier, and a Murvay-Groza-style MSE fingerprint.
//
// Each baseline consumes the same input as vProfile — a digitized voltage
// trace plus the claimed source address — so the bench harness can run
// them side by side.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "dsp/trace.hpp"

namespace baseline {

/// One training example: a message-aligned trace and its (trusted) SA.
struct TrainExample {
  dsp::Trace trace;
  std::uint8_t sa = 0;
};

/// Classification of one incoming message.
struct Classification {
  bool anomaly = false;
  /// Index of the class (ECU) the waveform was attributed to.
  std::size_t predicted_class = 0;
  /// Method-specific score (distance, MSE, negative log-likelihood).
  double score = 0.0;
};

/// Interface shared by all baselines.
class SenderIds {
 public:
  virtual ~SenderIds() = default;

  virtual std::string name() const = 0;

  /// Trains from labelled traces using the SA database to group SAs into
  /// ECU classes.  Returns false and sets `error` on failure (too little
  /// data, degenerate statistics).
  virtual bool train(const std::vector<TrainExample>& examples,
                     const vprofile::SaDatabase& database,
                     std::string* error) = 0;

  /// Classifies a message.  std::nullopt when the trace cannot be
  /// processed (no SOF, truncated) or the claimed SA is unknown — callers
  /// treat unknown SAs as trivially detected, like the paper does.
  virtual std::optional<Classification> classify(
      const dsp::Trace& trace, std::uint8_t claimed_sa) const = 0;

  /// Names of the trained classes, index-aligned with predicted_class.
  virtual const std::vector<std::string>& class_names() const = 0;
};

/// Shared trace-processing parameters (mirrors vProfile's constants).
struct BaselineConfig {
  double bit_threshold = 38000.0;
  std::size_t bit_width_samples = 80;
};

/// Maps each example to a dense class index via the database; returns the
/// class names.  Examples with SAs missing from the database are dropped
/// (their indices are set to SIZE_MAX).
std::vector<std::string> assign_classes(
    const std::vector<TrainExample>& examples,
    const vprofile::SaDatabase& database, std::vector<std::size_t>& labels);

}  // namespace baseline
