#include "baseline/logistic_ids.hpp"

#include <algorithm>
#include <cmath>

#include "core/extractor.hpp"

namespace baseline {
namespace {

linalg::Vector softmax(const linalg::Vector& logits) {
  const double m = *std::max_element(logits.begin(), logits.end());
  linalg::Vector p(logits.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    p[i] = std::exp(logits[i] - m);
    sum += p[i];
  }
  for (double& v : p) v /= sum;
  return p;
}

}  // namespace

bool LogisticIds::train(const std::vector<TrainExample>& examples,
                        const vprofile::SaDatabase& database,
                        std::string* error) {
  auto set_error = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };

  std::vector<std::size_t> labels;
  class_names_ = assign_classes(examples, database, labels);
  const std::size_t num_classes = class_names_.size();
  if (num_classes < 2) {
    return set_error("logistic: need at least two ECU classes");
  }
  sa_to_class_.fill(-1);
  for (const auto& [sa, name] : database) {
    const auto pos =
        std::find(class_names_.begin(), class_names_.end(), name);
    sa_to_class_[sa] = static_cast<std::int16_t>(pos - class_names_.begin());
  }

  // Features: the raw edge set, like vProfile, standardized.
  std::vector<linalg::Vector> xs;
  std::vector<std::size_t> ys;
  for (std::size_t i = 0; i < examples.size(); ++i) {
    if (labels[i] == static_cast<std::size_t>(-1)) continue;
    auto es = vprofile::extract_edge_set(examples[i].trace,
                                         options_.extraction);
    if (!es) continue;
    xs.push_back(std::move(es->samples));
    ys.push_back(labels[i]);
  }
  if (xs.size() < 4 * num_classes) {
    return set_error("logistic: too few usable training traces");
  }
  standardizer_ = Standardizer::fit(xs);
  for (auto& x : xs) x = standardizer_.apply(x);

  const std::size_t d = xs.front().size();
  weights_ = linalg::Matrix(num_classes, d);
  biases_.assign(num_classes, 0.0);

  // Full-batch gradient descent on the cross-entropy loss.
  const double inv_n = 1.0 / static_cast<double>(xs.size());
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    linalg::Matrix grad_w(num_classes, d);
    linalg::Vector grad_b(num_classes, 0.0);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      linalg::Vector logits(num_classes, 0.0);
      for (std::size_t c = 0; c < num_classes; ++c) {
        double s = biases_[c];
        for (std::size_t j = 0; j < d; ++j) s += weights_.at(c, j) * xs[i][j];
        logits[c] = s;
      }
      const linalg::Vector p = softmax(logits);
      for (std::size_t c = 0; c < num_classes; ++c) {
        const double delta = p[c] - (c == ys[i] ? 1.0 : 0.0);
        grad_b[c] += delta;
        for (std::size_t j = 0; j < d; ++j) {
          grad_w.at(c, j) += delta * xs[i][j];
        }
      }
    }
    for (std::size_t c = 0; c < num_classes; ++c) {
      biases_[c] -= options_.learning_rate * grad_b[c] * inv_n;
      for (std::size_t j = 0; j < d; ++j) {
        const double g =
            grad_w.at(c, j) * inv_n + options_.l2 * weights_.at(c, j);
        weights_.at(c, j) -= options_.learning_rate * g;
      }
    }
  }
  trained_ = true;

  // Confidence floor: a low quantile of own-class probabilities.
  std::vector<double> own_probs;
  own_probs.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    linalg::Vector logits(num_classes, 0.0);
    for (std::size_t c = 0; c < num_classes; ++c) {
      double s = biases_[c];
      for (std::size_t j = 0; j < d; ++j) s += weights_.at(c, j) * xs[i][j];
      logits[c] = s;
    }
    own_probs.push_back(softmax(logits)[ys[i]]);
  }
  std::sort(own_probs.begin(), own_probs.end());
  const std::size_t idx = static_cast<std::size_t>(
      options_.confidence_quantile * static_cast<double>(own_probs.size()));
  confidence_floor_ = own_probs[std::min(idx, own_probs.size() - 1)];
  return true;
}

linalg::Vector LogisticIds::predict_probabilities(
    const linalg::Vector& raw_features) const {
  const linalg::Vector x = standardizer_.apply(raw_features);
  const std::size_t num_classes = class_names_.size();
  linalg::Vector logits(num_classes, 0.0);
  for (std::size_t c = 0; c < num_classes; ++c) {
    double s = biases_[c];
    for (std::size_t j = 0; j < x.size(); ++j) s += weights_.at(c, j) * x[j];
    logits[c] = s;
  }
  return softmax(logits);
}

std::optional<Classification> LogisticIds::classify(
    const dsp::Trace& trace, std::uint8_t claimed_sa) const {
  if (!trained_) return std::nullopt;
  const std::int16_t cls = sa_to_class_[claimed_sa];
  if (cls < 0) return std::nullopt;
  auto es = vprofile::extract_edge_set(trace, options_.extraction);
  if (!es) return std::nullopt;

  const linalg::Vector p = predict_probabilities(es->samples);
  const std::size_t predicted = static_cast<std::size_t>(
      std::max_element(p.begin(), p.end()) - p.begin());

  Classification out;
  out.predicted_class = predicted;
  const double claimed_prob = p[static_cast<std::size_t>(cls)];
  out.score = -std::log(std::max(claimed_prob, 1e-300));
  out.anomaly = predicted != static_cast<std::size_t>(cls) ||
                claimed_prob < confidence_floor_;
  return out;
}

}  // namespace baseline
