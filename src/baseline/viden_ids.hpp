// Viden-style attacker identification (Cho & Shin, Section 1.2.2 of the
// related work): builds per-ECU *voltage profiles* from the dominant-state
// output voltages of non-ACK samples and, once an underlying IDS flags an
// intrusion, matches the attack messages' profile against the known
// profiles to name the compromised ECU.
//
// Faithful simplification: Viden tracks the upper percentiles of CAN_H
// and lower percentiles of CAN_L ("tracking points") accumulated over
// many frames.  We work on the differential trace the rest of the library
// uses, so a profile is the distribution of dominant steady-state
// voltages summarized by its median and upper percentile.  As in the
// paper's description, Viden is not itself a detector — identify() needs
// several attack messages collected after some IDS raised an alarm.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "baseline/common.hpp"
#include "dsp/trace.hpp"

namespace baseline {

/// Voltage-profile attacker identifier.
class VidenIds {
 public:
  struct Options {
    BaselineConfig base;
    /// Samples skipped after each dominant-run start (edge + overshoot).
    std::size_t settle_samples = 12;
    /// Minimum usable dominant samples per training message.
    std::size_t min_samples_per_message = 8;
    std::size_t min_train_messages = 16;
  };

  explicit VidenIds(Options options) : options_(options) {}

  /// Learns one voltage profile per ECU class from trusted traffic.
  bool train(const std::vector<TrainExample>& examples,
             const vprofile::SaDatabase& database, std::string* error);

  /// Builds an attack profile from the flagged messages and returns the
  /// index of the best-matching known ECU (the likely compromised node)
  /// together with the match distance.  std::nullopt when the messages
  /// yield no usable profile.
  struct Identification {
    std::size_t ecu = 0;
    double distance = 0.0;  // profile-space distance to the winner
  };
  std::optional<Identification> identify(
      const std::vector<dsp::Trace>& attack_messages) const;

  const std::vector<std::string>& class_names() const { return class_names_; }

  /// The (median, upper-percentile) profile of a trained class.
  std::optional<std::pair<double, double>> profile_of(std::size_t cls) const;

 private:
  struct Profile {
    double median = 0.0;
    double p90 = 0.0;
  };
  std::optional<Profile> profile_from(
      const std::vector<dsp::Trace>& messages) const;

  Options options_;
  std::vector<std::string> class_names_;
  std::vector<Profile> profiles_;
};

}  // namespace baseline
