// Propagation-delay sender locator (Moreno & Fischmeister, Section 1.2.2):
// two differential probes at opposite ends of the bus see each message
// with a position-dependent arrival-time difference.  Cross-correlating
// the two captures estimates that difference with sub-sample resolution,
// locating the transmitter on the harness — a third, independent
// fingerprint besides voltage (vProfile) and timing (clock skew).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dsp/trace.hpp"

namespace baseline {

/// Sub-sample arrival-delay estimator.
class DelayEstimator {
 public:
  /// `max_lag_samples`: largest |delay| searched; `sample_rate_hz` for
  /// conversion to seconds.  Throws on non-positive arguments.
  DelayEstimator(std::size_t max_lag_samples, double sample_rate_hz);

  /// Delay of `b` relative to `a` in seconds (positive = b lags a),
  /// estimated by the cross-correlation peak with parabolic sub-sample
  /// interpolation.  std::nullopt when the traces are too short or flat.
  std::optional<double> estimate(const dsp::Trace& a,
                                 const dsp::Trace& b) const;

 private:
  std::size_t max_lag_;
  double sample_rate_hz_;
};

/// Per-SA position fingerprinting and verification.
class DelayLocatorIds {
 public:
  struct Options {
    std::size_t max_lag_samples = 8;
    double sample_rate_hz = 20.0e6;
    /// Verification threshold in trained standard deviations.
    double threshold_sigma = 6.0;
    std::size_t min_train_messages = 8;
  };

  explicit DelayLocatorIds(Options options);

  /// One training observation: the two tap captures plus the SA the
  /// message carried (trusted during training).
  struct TapPair {
    dsp::Trace tap_a;
    dsp::Trace tap_b;
    std::uint8_t sa = 0;
  };

  /// Learns per-SA delay-difference distributions.  False with a
  /// diagnostic when an SA has too few usable pairs.
  bool train(const std::vector<TapPair>& pairs, std::string* error);

  struct Classification {
    bool anomaly = false;
    /// Estimated delay difference (seconds) of the incoming message.
    double delay_s = 0.0;
    /// z-score against the claimed SA's trained distribution.
    double z = 0.0;
  };

  /// Verifies a message against its claimed SA's position.  std::nullopt
  /// when the SA is unknown or the delay cannot be estimated.
  std::optional<Classification> classify(const dsp::Trace& tap_a,
                                         const dsp::Trace& tap_b,
                                         std::uint8_t claimed_sa) const;

  /// Trained mean delay difference for an SA (for diagnostics).
  std::optional<double> delay_of(std::uint8_t sa) const;

 private:
  Options options_;
  DelayEstimator estimator_;
  struct Profile {
    double mean = 0.0;
    double sigma = 0.0;
  };
  std::map<std::uint8_t, Profile> profiles_;
};

}  // namespace baseline
