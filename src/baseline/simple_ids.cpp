#include "baseline/simple_ids.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/covariance.hpp"
#include "linalg/mahalanobis.hpp"

namespace baseline {
namespace {

/// Equal-error-rate threshold by binary search: the value where the
/// fraction of in-class distances above it (false rejects) equals the
/// fraction of out-of-class distances below it (false accepts).
double eer_threshold(std::vector<double> genuine,
                     std::vector<double> impostor) {
  std::sort(genuine.begin(), genuine.end());
  std::sort(impostor.begin(), impostor.end());
  auto frr = [&](double t) {
    // fraction of genuine > t
    const auto it = std::upper_bound(genuine.begin(), genuine.end(), t);
    return static_cast<double>(genuine.end() - it) /
           static_cast<double>(genuine.size());
  };
  auto far = [&](double t) {
    // fraction of impostor <= t
    const auto it = std::upper_bound(impostor.begin(), impostor.end(), t);
    return static_cast<double>(it - impostor.begin()) /
           static_cast<double>(impostor.size());
  };
  double lo = std::min(genuine.front(), impostor.front());
  double hi = std::max(genuine.back(), impostor.back());
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (frr(mid) > far(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

}  // namespace

bool SimpleIds::train(const std::vector<TrainExample>& examples,
                      const vprofile::SaDatabase& database,
                      std::string* error) {
  auto set_error = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };

  std::vector<std::size_t> labels;
  class_names_ = assign_classes(examples, database, labels);
  if (class_names_.size() < 2) {
    return set_error("SIMPLE: need at least two ECU classes");
  }
  sa_to_class_.fill(-1);
  for (const auto& [sa, name] : database) {
    const auto pos =
        std::find(class_names_.begin(), class_names_.end(), name);
    sa_to_class_[sa] =
        static_cast<std::int16_t>(pos - class_names_.begin());
  }

  // Raw 16-dim features.
  std::vector<linalg::Vector> features;
  std::vector<std::size_t> kept_labels;
  features.reserve(examples.size());
  for (std::size_t i = 0; i < examples.size(); ++i) {
    if (labels[i] == static_cast<std::size_t>(-1)) continue;
    auto f = simple_features(examples[i].trace, config_);
    if (!f) continue;
    features.push_back(std::move(*f));
    kept_labels.push_back(labels[i]);
  }
  if (features.size() < 4 * class_names_.size()) {
    return set_error("SIMPLE: too few usable training traces");
  }

  // Fisher projection to (C-1) dimensions.
  projection_ = FisherProjection::fit(features, kept_labels,
                                      class_names_.size(),
                                      class_names_.size() - 1);
  if (!projection_) {
    return set_error("SIMPLE: singular within-class scatter");
  }

  // Per-class Gaussian templates in FDA space.
  const std::size_t k = projection_->output_dim();
  std::vector<linalg::CovarianceAccumulator> accs(
      class_names_.size(), linalg::CovarianceAccumulator(k));
  std::vector<std::vector<linalg::Vector>> projected(class_names_.size());
  for (std::size_t i = 0; i < features.size(); ++i) {
    linalg::Vector p = projection_->project(features[i]);
    accs[kept_labels[i]].add(p);
    projected[kept_labels[i]].push_back(std::move(p));
  }

  templates_.clear();
  templates_.resize(class_names_.size());
  for (std::size_t c = 0; c < class_names_.size(); ++c) {
    if (accs[c].count() < 4) {
      return set_error("SIMPLE: class '" + class_names_[c] +
                       "' has too few traces");
    }
    linalg::Matrix cov = accs[c].covariance();
    auto chol = linalg::factorize_with_ridge(cov, 1e-9 * cov.trace());
    if (!chol) {
      return set_error("SIMPLE: singular covariance for class '" +
                       class_names_[c] + "'");
    }
    templates_[c].mean = accs[c].mean();
    templates_[c].inv_cov = chol->factor.inverse();
  }

  // Equal-error-rate thresholds per class.
  thresholds_.assign(class_names_.size(), 0.0);
  for (std::size_t c = 0; c < class_names_.size(); ++c) {
    std::vector<double> genuine;
    std::vector<double> impostor;
    for (std::size_t other = 0; other < class_names_.size(); ++other) {
      for (const auto& p : projected[other]) {
        const double d = linalg::mahalanobis_distance_inv(
            p, templates_[c].mean, templates_[c].inv_cov);
        (other == c ? genuine : impostor).push_back(d);
      }
    }
    if (genuine.empty() || impostor.empty()) {
      return set_error("SIMPLE: missing genuine or impostor samples");
    }
    thresholds_[c] = eer_threshold(std::move(genuine), std::move(impostor));
  }
  return true;
}

std::optional<Classification> SimpleIds::classify(
    const dsp::Trace& trace, std::uint8_t claimed_sa) const {
  if (!projection_) return std::nullopt;
  const std::int16_t cls = sa_to_class_[claimed_sa];
  if (cls < 0) return std::nullopt;
  auto f = simple_features(trace, config_);
  if (!f) return std::nullopt;
  const linalg::Vector p = projection_->project(*f);

  const std::size_t c = static_cast<std::size_t>(cls);
  const double dist = linalg::mahalanobis_distance_inv(
      p, templates_[c].mean, templates_[c].inv_cov);

  Classification out;
  out.score = dist;
  out.anomaly = dist > thresholds_[c];
  // Attribution: nearest template.
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t other = 0; other < templates_.size(); ++other) {
    const double d = linalg::mahalanobis_distance_inv(
        p, templates_[other].mean, templates_[other].inv_cov);
    if (d < best) {
      best = d;
      out.predicted_class = other;
    }
  }
  return out;
}

}  // namespace baseline
