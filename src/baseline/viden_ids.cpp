#include "baseline/viden_ids.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "baseline/features.hpp"
#include "stats/summary.hpp"

namespace baseline {
namespace {

/// Dominant steady-state samples of one message: interior samples of each
/// dominant run, skipping the post-edge settle window.
void collect_dominant_samples(const dsp::Trace& trace, double threshold,
                              std::size_t settle,
                              std::vector<double>& out) {
  for (const Run& run : segment_runs(trace, threshold)) {
    if (!run.dominant) continue;
    if (run.length() <= settle + 2) continue;
    for (std::size_t i = run.first + settle; i < run.last; ++i) {
      out.push_back(trace[i]);
    }
  }
}

}  // namespace

std::optional<VidenIds::Profile> VidenIds::profile_from(
    const std::vector<dsp::Trace>& messages) const {
  std::vector<double> samples;
  for (const dsp::Trace& t : messages) {
    collect_dominant_samples(t, options_.base.bit_threshold,
                             options_.settle_samples, samples);
  }
  if (samples.size() <
      options_.min_samples_per_message * std::max<std::size_t>(1,
                                                               messages.size() / 4)) {
    return std::nullopt;
  }
  Profile p;
  p.median = stats::percentile(samples, 0.5);
  p.p90 = stats::percentile(samples, 0.9);
  return p;
}

bool VidenIds::train(const std::vector<TrainExample>& examples,
                     const vprofile::SaDatabase& database,
                     std::string* error) {
  auto set_error = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  std::vector<std::size_t> labels;
  class_names_ = assign_classes(examples, database, labels);
  if (class_names_.empty()) return set_error("Viden: empty database");

  std::vector<std::vector<dsp::Trace>> per_class(class_names_.size());
  for (std::size_t i = 0; i < examples.size(); ++i) {
    if (labels[i] == static_cast<std::size_t>(-1)) continue;
    per_class[labels[i]].push_back(examples[i].trace);
  }

  profiles_.clear();
  profiles_.resize(class_names_.size());
  for (std::size_t c = 0; c < class_names_.size(); ++c) {
    if (per_class[c].size() < options_.min_train_messages) {
      return set_error("Viden: class '" + class_names_[c] +
                       "' has too few messages");
    }
    const auto p = profile_from(per_class[c]);
    if (!p) {
      return set_error("Viden: class '" + class_names_[c] +
                       "' yields no usable dominant samples");
    }
    profiles_[c] = *p;
  }
  return true;
}

std::optional<VidenIds::Identification> VidenIds::identify(
    const std::vector<dsp::Trace>& attack_messages) const {
  if (profiles_.empty()) return std::nullopt;
  const auto attack = profile_from(attack_messages);
  if (!attack) return std::nullopt;

  Identification best;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < profiles_.size(); ++c) {
    const double dm = attack->median - profiles_[c].median;
    const double dp = attack->p90 - profiles_[c].p90;
    const double dist = std::sqrt(dm * dm + dp * dp);
    if (dist < best_dist) {
      best_dist = dist;
      best.ecu = c;
    }
  }
  best.distance = best_dist;
  return best;
}

std::optional<std::pair<double, double>> VidenIds::profile_of(
    std::size_t cls) const {
  if (cls >= profiles_.size()) return std::nullopt;
  return std::make_pair(profiles_[cls].median, profiles_[cls].p90);
}

}  // namespace baseline
