// SIMPLE baseline (Foruhandeh, Man, Gerdes, Li, Chantem — described in
// Section 1.2.1): 16 per-state averaged features, Fisher Discriminant
// Analysis dimensionality reduction, and per-ECU Mahalanobis thresholds
// found by a binary search on the equal error rate.
#pragma once

#include <array>
#include <cstdint>

#include "baseline/common.hpp"
#include "baseline/features.hpp"
#include "baseline/fisher.hpp"
#include "linalg/matrix.hpp"

namespace baseline {

class SimpleIds final : public SenderIds {
 public:
  explicit SimpleIds(BaselineConfig config) : config_(config) {}

  std::string name() const override { return "SIMPLE"; }

  bool train(const std::vector<TrainExample>& examples,
             const vprofile::SaDatabase& database,
             std::string* error) override;

  std::optional<Classification> classify(const dsp::Trace& trace,
                                         std::uint8_t claimed_sa)
      const override;

  const std::vector<std::string>& class_names() const override {
    return class_names_;
  }

  /// Per-class equal-error-rate threshold (for diagnostics).
  double threshold_of(std::size_t cls) const { return thresholds_.at(cls); }

 private:
  struct ClassTemplate {
    linalg::Vector mean;          // in FDA space
    linalg::Matrix inv_cov;       // in FDA space
  };

  BaselineConfig config_;
  std::vector<std::string> class_names_;
  std::array<std::int16_t, 256> sa_to_class_{};
  std::optional<FisherProjection> projection_;
  std::vector<ClassTemplate> templates_;
  std::vector<double> thresholds_;
};

}  // namespace baseline
