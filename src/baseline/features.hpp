// Feature extraction shared by the baselines.
//
//  * Run segmentation: splits a trace into dominant / recessive runs by
//    threshold, the first step of SIMPLE's per-state sampling.
//  * SIMPLE features: eight interior samples per dominant state and eight
//    per recessive state, averaged sample-wise across states -> 16
//    features (Foruhandeh et al., described in Section 1.2.1).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "baseline/common.hpp"
#include "dsp/trace.hpp"
#include "linalg/vector_ops.hpp"

namespace baseline {

/// One constant-polarity run of samples.
struct Run {
  bool dominant = false;
  std::size_t first = 0;  // inclusive
  std::size_t last = 0;   // inclusive
  std::size_t length() const { return last - first + 1; }
};

/// Splits the trace into alternating runs, starting at the first dominant
/// sample (the SOF).  Empty when the trace never crosses the threshold.
std::vector<Run> segment_runs(const dsp::Trace& trace, double threshold);

/// SIMPLE's 16-dimensional feature vector.  Uses up to `max_states` runs
/// of each polarity (more states average out noise but add latency).
/// Runs shorter than 8 samples are sampled with repetition at evenly
/// spaced fractional positions.  std::nullopt when the trace yields fewer
/// than 2 runs of either polarity.
std::optional<linalg::Vector> simple_features(const dsp::Trace& trace,
                                              const BaselineConfig& config,
                                              std::size_t max_states = 16);

/// Per-dimension standardization (z-score) parameters learned on training
/// data and applied to every classified message.
struct Standardizer {
  linalg::Vector mean;
  linalg::Vector inv_std;

  /// Learns parameters.  Dimensions with zero variance get inv_std 0 so
  /// they contribute nothing (rather than exploding).
  static Standardizer fit(const std::vector<linalg::Vector>& xs);
  linalg::Vector apply(const linalg::Vector& x) const;
};

}  // namespace baseline
