// Scission-style machine-learning baseline (Section 1.2.1): features from
// the message start fed to a supervised classifier.
//
// Scission proper uses Relief-F feature selection plus logistic regression
// over Weka; we implement the same pipeline shape natively: vProfile edge
// sets as features, z-score standardization, and multinomial logistic
// regression (softmax) trained by full-batch gradient descent with L2
// regularization.  Detection flags a message when the predicted class
// differs from the claimed class or the claimed class' probability falls
// below a confidence floor learned on the training data.
#pragma once

#include <array>
#include <cstdint>

#include "baseline/common.hpp"
#include "baseline/features.hpp"
#include "core/edge_set.hpp"
#include "linalg/matrix.hpp"

namespace baseline {

/// Multinomial-logistic-regression sender identifier.
class LogisticIds final : public SenderIds {
 public:
  struct Options {
    vprofile::ExtractionConfig extraction;
    int epochs = 150;
    double learning_rate = 0.1;
    double l2 = 1e-4;
    /// Quantile of training own-class probabilities used as the
    /// confidence floor (e.g. 0.001 = flag anything less likely than the
    /// least likely 0.1% of training data).
    double confidence_quantile = 0.001;
  };

  explicit LogisticIds(Options options) : options_(std::move(options)) {}

  std::string name() const override { return "logistic"; }

  bool train(const std::vector<TrainExample>& examples,
             const vprofile::SaDatabase& database,
             std::string* error) override;

  std::optional<Classification> classify(const dsp::Trace& trace,
                                         std::uint8_t claimed_sa)
      const override;

  const std::vector<std::string>& class_names() const override {
    return class_names_;
  }

  /// Softmax probabilities for a feature vector (exposed for tests).
  linalg::Vector predict_probabilities(const linalg::Vector& raw_features)
      const;

 private:
  Options options_;
  std::vector<std::string> class_names_;
  std::array<std::int16_t, 256> sa_to_class_{};
  Standardizer standardizer_;
  linalg::Matrix weights_;  // (C, D)
  linalg::Vector biases_;   // (C)
  double confidence_floor_ = 0.0;
  bool trained_ = false;
};

}  // namespace baseline
