#include "baseline/features.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/welford.hpp"

namespace baseline {

std::vector<Run> segment_runs(const dsp::Trace& trace, double threshold) {
  std::vector<Run> runs;
  std::size_t i = 0;
  // Skip the idle lead-in; the first run starts at SOF.
  while (i < trace.size() && trace[i] < threshold) ++i;
  if (i == trace.size()) return runs;

  Run current{true, i, i};
  for (++i; i < trace.size(); ++i) {
    const bool dominant = trace[i] >= threshold;
    if (dominant == current.dominant) {
      current.last = i;
    } else {
      runs.push_back(current);
      current = Run{dominant, i, i};
    }
  }
  runs.push_back(current);
  return runs;
}

std::optional<linalg::Vector> simple_features(const dsp::Trace& trace,
                                              const BaselineConfig& config,
                                              std::size_t max_states) {
  constexpr std::size_t kSamplesPerState = 8;
  const std::vector<Run> runs = segment_runs(trace, config.bit_threshold);

  // Accumulate sample-wise sums separately per polarity.
  linalg::Vector dom_sum(kSamplesPerState, 0.0);
  linalg::Vector rec_sum(kSamplesPerState, 0.0);
  std::size_t dom_count = 0;
  std::size_t rec_count = 0;

  for (const Run& run : runs) {
    auto& sum = run.dominant ? dom_sum : rec_sum;
    auto& count = run.dominant ? dom_count : rec_count;
    if (count >= max_states) continue;
    // Evenly spaced positions across the run interior; short runs sample
    // with repetition.
    for (std::size_t k = 0; k < kSamplesPerState; ++k) {
      const double frac = (kSamplesPerState == 1)
                              ? 0.5
                              : static_cast<double>(k) /
                                    static_cast<double>(kSamplesPerState - 1);
      const std::size_t idx =
          run.first + static_cast<std::size_t>(
                          frac * static_cast<double>(run.length() - 1) + 0.5);
      sum[k] += trace[idx];
    }
    ++count;
  }

  if (dom_count < 2 || rec_count < 2) return std::nullopt;

  linalg::Vector features;
  features.reserve(2 * kSamplesPerState);
  for (double s : dom_sum) {
    features.push_back(s / static_cast<double>(dom_count));
  }
  for (double s : rec_sum) {
    features.push_back(s / static_cast<double>(rec_count));
  }
  return features;
}

std::vector<std::string> assign_classes(
    const std::vector<TrainExample>& examples,
    const vprofile::SaDatabase& database, std::vector<std::size_t>& labels) {
  std::vector<std::string> names;
  // Deterministic class order: database iteration order (sorted by SA),
  // first occurrence of each name.
  for (const auto& [sa, name] : database) {
    if (std::find(names.begin(), names.end(), name) == names.end()) {
      names.push_back(name);
    }
  }
  labels.assign(examples.size(), static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < examples.size(); ++i) {
    const auto it = database.find(examples[i].sa);
    if (it == database.end()) continue;
    const auto pos = std::find(names.begin(), names.end(), it->second);
    labels[i] = static_cast<std::size_t>(pos - names.begin());
  }
  return names;
}

Standardizer Standardizer::fit(const std::vector<linalg::Vector>& xs) {
  if (xs.empty()) {
    throw std::invalid_argument("Standardizer::fit: empty input");
  }
  stats::VectorWelford acc(xs.front().size());
  for (const auto& x : xs) acc.add(x);
  Standardizer st;
  st.mean = acc.mean();
  st.inv_std.resize(st.mean.size());
  const std::vector<double> sd = acc.stddev();
  for (std::size_t i = 0; i < sd.size(); ++i) {
    st.inv_std[i] = (sd[i] > 1e-12) ? 1.0 / sd[i] : 0.0;
  }
  return st;
}

linalg::Vector Standardizer::apply(const linalg::Vector& x) const {
  if (x.size() != mean.size()) {
    throw std::invalid_argument("Standardizer::apply: size mismatch");
  }
  linalg::Vector out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = (x[i] - mean[i]) * inv_std[i];
  }
  return out;
}

}  // namespace baseline
