// Murvay-Groza-style baseline (Section 1.2.1): low-pass-filter the signal,
// store a mean fingerprint per ECU, and compare incoming messages by mean
// square error against the claimed ECU's fingerprint.
#pragma once

#include <array>
#include <cstdint>

#include "baseline/common.hpp"
#include "dsp/fir.hpp"

namespace baseline {

/// MSE fingerprint sender identifier.
class MseIds final : public SenderIds {
 public:
  struct Options {
    BaselineConfig base;
    /// Samples of the fingerprint window, anchored at SOF.
    std::size_t window_len = 400;
    /// Low-pass cutoff as a fraction of the Nyquist frequency.
    double cutoff_fraction = 0.35;
    double sample_rate_hz = 20.0e6;
    std::size_t fir_taps = 31;
    /// Detection threshold = max training MSE * (1 + slack).
    double threshold_slack = 0.25;
  };

  explicit MseIds(Options options);

  std::string name() const override { return "MSE"; }

  bool train(const std::vector<TrainExample>& examples,
             const vprofile::SaDatabase& database,
             std::string* error) override;

  std::optional<Classification> classify(const dsp::Trace& trace,
                                         std::uint8_t claimed_sa)
      const override;

  const std::vector<std::string>& class_names() const override {
    return class_names_;
  }

 private:
  std::optional<dsp::Trace> fingerprint_window(const dsp::Trace& trace) const;

  Options options_;
  dsp::FirLowPass filter_;
  std::vector<std::string> class_names_;
  std::array<std::int16_t, 256> sa_to_class_{};
  std::vector<dsp::Trace> fingerprints_;
  std::vector<double> thresholds_;
};

}  // namespace baseline
