#include "baseline/fisher.hpp"

#include <algorithm>
#include <stdexcept>

#include "linalg/cholesky.hpp"
#include "linalg/eigen.hpp"
#include "linalg/vector_ops.hpp"

namespace baseline {

std::optional<FisherProjection> FisherProjection::fit(
    const std::vector<linalg::Vector>& xs,
    const std::vector<std::size_t>& labels, std::size_t num_classes,
    std::size_t out_dim, double ridge) {
  if (xs.empty() || xs.size() != labels.size()) {
    throw std::invalid_argument("FisherProjection::fit: bad input sizes");
  }
  const std::size_t d = xs.front().size();
  if (d == 0) throw std::invalid_argument("FisherProjection::fit: empty dim");
  if (num_classes < 2) {
    throw std::invalid_argument("FisherProjection::fit: need >= 2 classes");
  }

  // Class means and the global mean.
  std::vector<linalg::Vector> class_mean(num_classes,
                                         linalg::Vector(d, 0.0));
  std::vector<std::size_t> class_count(num_classes, 0);
  linalg::Vector global_mean(d, 0.0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i].size() != d) {
      throw std::invalid_argument("FisherProjection::fit: ragged input");
    }
    if (labels[i] >= num_classes) {
      throw std::invalid_argument("FisherProjection::fit: label out of range");
    }
    for (std::size_t j = 0; j < d; ++j) {
      class_mean[labels[i]][j] += xs[i][j];
      global_mean[j] += xs[i][j];
    }
    ++class_count[labels[i]];
  }
  for (std::size_t c = 0; c < num_classes; ++c) {
    if (class_count[c] == 0) continue;
    for (double& v : class_mean[c]) {
      v /= static_cast<double>(class_count[c]);
    }
  }
  for (double& v : global_mean) v /= static_cast<double>(xs.size());

  // Within-class and between-class scatter.
  linalg::Matrix sw(d, d);
  linalg::Matrix sb(d, d);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const linalg::Vector dev = linalg::subtract(xs[i], class_mean[labels[i]]);
    for (std::size_t r = 0; r < d; ++r) {
      for (std::size_t c = 0; c < d; ++c) {
        sw.at(r, c) += dev[r] * dev[c];
      }
    }
  }
  for (std::size_t cls = 0; cls < num_classes; ++cls) {
    if (class_count[cls] == 0) continue;
    const linalg::Vector dev = linalg::subtract(class_mean[cls], global_mean);
    const double n = static_cast<double>(class_count[cls]);
    for (std::size_t r = 0; r < d; ++r) {
      for (std::size_t c = 0; c < d; ++c) {
        sb.at(r, c) += n * dev[r] * dev[c];
      }
    }
  }
  sw.add_ridge(ridge * std::max(1.0, sw.trace() / static_cast<double>(d)));

  // Whiten: Sw = L L^T; M = L^-1 Sb L^-T is symmetric with the same
  // generalized eigenvalues.
  const auto chol = linalg::Cholesky::factorize(sw);
  if (!chol) return std::nullopt;

  // Compute L^-1 Sb L^-T column by column using triangular solves on the
  // full inverse (dimensions are tiny, 16x16).
  const linalg::Matrix sw_inv_sb_sym = [&] {
    const linalg::Matrix l = chol->lower();
    // Forward-substitute L X = Sb  => X = L^-1 Sb.
    const std::size_t n = d;
    linalg::Matrix x(n, n);
    for (std::size_t col = 0; col < n; ++col) {
      for (std::size_t i = 0; i < n; ++i) {
        double s = sb.at(i, col);
        for (std::size_t k = 0; k < i; ++k) s -= l.at(i, k) * x.at(k, col);
        x.at(i, col) = s / l.at(i, i);
      }
    }
    // Now solve L Y^T = X^T => Y = X L^-T.
    linalg::Matrix y(n, n);
    for (std::size_t row = 0; row < n; ++row) {
      for (std::size_t i = 0; i < n; ++i) {
        double s = x.at(row, i);
        for (std::size_t k = 0; k < i; ++k) s -= l.at(i, k) * y.at(row, k);
        y.at(row, i) = s / l.at(i, i);
      }
    }
    return y;
  }();

  const linalg::EigenDecomposition eig = linalg::jacobi_eigen(
      (sw_inv_sb_sym + sw_inv_sb_sym.transpose()) * 0.5);

  const std::size_t k =
      std::min({out_dim, num_classes - 1, d});
  // Map whitened directions back: w = L^-T v.
  linalg::Matrix w(k, d);
  const linalg::Matrix& l = chol->lower();
  for (std::size_t row = 0; row < k; ++row) {
    // Solve L^T u = v_row by back substitution.
    linalg::Vector v(d);
    for (std::size_t i = 0; i < d; ++i) v[i] = eig.vectors.at(i, row);
    linalg::Vector u(d);
    for (std::size_t ii = d; ii-- > 0;) {
      double s = v[ii];
      for (std::size_t kk = ii + 1; kk < d; ++kk) s -= l.at(kk, ii) * u[kk];
      u[ii] = s / l.at(ii, ii);
    }
    for (std::size_t c = 0; c < d; ++c) w.at(row, c) = u[c];
  }
  return FisherProjection(std::move(w));
}

linalg::Vector FisherProjection::project(const linalg::Vector& x) const {
  return w_ * x;
}

}  // namespace baseline
