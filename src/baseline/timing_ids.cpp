#include "baseline/timing_ids.hpp"

#include <algorithm>
#include <cmath>

namespace baseline {

bool ClockSkewIds::train(const std::vector<TimedMessage>& messages,
                         std::string* error) {
  auto set_error = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };

  std::map<std::uint8_t, std::vector<double>> arrivals;
  for (const TimedMessage& m : messages) arrivals[m.sa].push_back(m.time_s);
  if (arrivals.empty()) return set_error("ClockSkewIds: no training data");

  profiles_.clear();
  for (auto& [sa, ts] : arrivals) {
    if (ts.size() < options_.min_train_messages) {
      return set_error("ClockSkewIds: SA " + std::to_string(sa) +
                       " has too few messages");
    }
    std::sort(ts.begin(), ts.end());
    const std::size_t n = ts.size();

    // Nominal period from the full span (robust to jitter).
    Profile p;
    p.period = (ts.back() - ts.front()) / static_cast<double>(n - 1);

    // Offsets against the nominal grid; the slope of offset vs index is
    // the clock skew (least squares with intercept, since t0 is itself
    // jittered).
    double sum_k = 0.0;
    double sum_o = 0.0;
    double sum_kk = 0.0;
    double sum_ko = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double k = static_cast<double>(i);
      const double offset =
          ts[i] - (ts.front() + k * p.period);
      sum_k += k;
      sum_o += offset;
      sum_kk += k * k;
      sum_ko += k * offset;
    }
    const double denom =
        static_cast<double>(n) * sum_kk - sum_k * sum_k;
    // Exact-zero guard against division by zero, not a tolerance test.
    // vprofile-lint: allow(float-eq)
    p.skew = (denom != 0.0)
                 ? (static_cast<double>(n) * sum_ko - sum_k * sum_o) / denom
                 : 0.0;

    // Residual jitter around the skew line.
    const double intercept =
        (sum_o - p.skew * sum_k) / static_cast<double>(n);
    double ss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double k = static_cast<double>(i);
      const double offset = ts[i] - (ts.front() + k * p.period);
      const double resid = offset - (intercept + p.skew * k);
      ss += resid * resid;
    }
    p.residual_sigma =
        std::max(1e-9, std::sqrt(ss / static_cast<double>(n)));
    profiles_[sa] = p;
  }
  reset_online_state();
  return true;
}

ClockSkewIds::Verdict ClockSkewIds::observe(const TimedMessage& message) {
  const auto it = profiles_.find(message.sa);
  if (it == profiles_.end()) return Verdict::kUnknownSa;
  const Profile& p = it->second;
  Online& state = online_[message.sa];

  if (!state.started) {
    state.started = true;
    state.t0 = message.time_s;
    state.k = 0;
    return Verdict::kOk;
  }
  ++state.k;

  // Accumulated offset against the trained period grid.
  const double k = static_cast<double>(state.k);
  const double offset = message.time_s - (state.t0 + k * p.period);

  // Warm-up: settle the offset intercept (t0's own jitter) before
  // scoring, otherwise every step inherits a constant bias.
  if (state.intercept_n < kInterceptWarmup) {
    state.intercept_sum += offset - p.skew * k;
    ++state.intercept_n;
    return Verdict::kOk;
  }
  const double intercept =
      state.intercept_sum / static_cast<double>(state.intercept_n);

  // Identification error: deviation from the trained skew line,
  // normalized by sqrt(k) so small period-estimation errors (which grow
  // the raw deviation linearly in k) do not accumulate into false alarms
  // over long horizons, while genuine skew changes still dominate.
  const double expected = intercept + p.skew * k;
  const double e =
      (offset - expected) / (p.residual_sigma * std::sqrt(k));

  // Two-sided CUSUM.
  state.cusum_pos = std::max(0.0, state.cusum_pos + e - options_.cusum_slack);
  state.cusum_neg = std::max(0.0, state.cusum_neg - e - options_.cusum_slack);
  if (state.cusum_pos > options_.cusum_threshold ||
      state.cusum_neg > options_.cusum_threshold) {
    return Verdict::kAnomaly;
  }
  return Verdict::kOk;
}

std::optional<double> ClockSkewIds::skew_of(std::uint8_t sa) const {
  const auto it = profiles_.find(sa);
  if (it == profiles_.end()) return std::nullopt;
  return it->second.skew;
}

void ClockSkewIds::reset_online_state() { online_.clear(); }

}  // namespace baseline
