#include "baseline/mse_ids.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dsp/trace.hpp"

namespace baseline {
namespace {

double mse(const dsp::Trace& a, const dsp::Trace& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s / static_cast<double>(a.size());
}

}  // namespace

MseIds::MseIds(Options options)
    : options_(options),
      filter_(options.cutoff_fraction * options.sample_rate_hz / 2.0,
              options.sample_rate_hz, options.fir_taps) {}

std::optional<dsp::Trace> MseIds::fingerprint_window(
    const dsp::Trace& trace) const {
  const auto sof = dsp::find_sof(trace, options_.base.bit_threshold);
  if (!sof) return std::nullopt;
  if (*sof + options_.window_len > trace.size()) return std::nullopt;
  dsp::Trace window(trace.begin() + static_cast<std::ptrdiff_t>(*sof),
                    trace.begin() +
                        static_cast<std::ptrdiff_t>(*sof +
                                                    options_.window_len));
  return filter_.apply(window);
}

bool MseIds::train(const std::vector<TrainExample>& examples,
                   const vprofile::SaDatabase& database,
                   std::string* error) {
  auto set_error = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };

  std::vector<std::size_t> labels;
  class_names_ = assign_classes(examples, database, labels);
  if (class_names_.empty()) return set_error("MSE: empty database");
  sa_to_class_.fill(-1);
  for (const auto& [sa, name] : database) {
    const auto pos =
        std::find(class_names_.begin(), class_names_.end(), name);
    sa_to_class_[sa] = static_cast<std::int16_t>(pos - class_names_.begin());
  }

  // Mean filtered window per class.
  std::vector<dsp::Trace> sums(class_names_.size(),
                               dsp::Trace(options_.window_len, 0.0));
  std::vector<std::size_t> counts(class_names_.size(), 0);
  std::vector<std::vector<dsp::Trace>> kept(class_names_.size());
  for (std::size_t i = 0; i < examples.size(); ++i) {
    if (labels[i] == static_cast<std::size_t>(-1)) continue;
    auto w = fingerprint_window(examples[i].trace);
    if (!w) continue;
    for (std::size_t j = 0; j < options_.window_len; ++j) {
      sums[labels[i]][j] += (*w)[j];
    }
    ++counts[labels[i]];
    kept[labels[i]].push_back(std::move(*w));
  }

  fingerprints_.assign(class_names_.size(),
                       dsp::Trace(options_.window_len, 0.0));
  thresholds_.assign(class_names_.size(), 0.0);
  for (std::size_t c = 0; c < class_names_.size(); ++c) {
    if (counts[c] < 4) {
      return set_error("MSE: class '" + class_names_[c] +
                       "' has too few usable traces");
    }
    for (std::size_t j = 0; j < options_.window_len; ++j) {
      fingerprints_[c][j] = sums[c][j] / static_cast<double>(counts[c]);
    }
    double max_mse = 0.0;
    for (const dsp::Trace& w : kept[c]) {
      max_mse = std::max(max_mse, mse(w, fingerprints_[c]));
    }
    thresholds_[c] = max_mse * (1.0 + options_.threshold_slack);
  }
  return true;
}

std::optional<Classification> MseIds::classify(
    const dsp::Trace& trace, std::uint8_t claimed_sa) const {
  if (fingerprints_.empty()) return std::nullopt;
  const std::int16_t cls = sa_to_class_[claimed_sa];
  if (cls < 0) return std::nullopt;
  auto w = fingerprint_window(trace);
  if (!w) return std::nullopt;

  Classification out;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < fingerprints_.size(); ++c) {
    const double e = mse(*w, fingerprints_[c]);
    if (e < best) {
      best = e;
      out.predicted_class = c;
    }
  }
  const double claimed_mse =
      mse(*w, fingerprints_[static_cast<std::size_t>(cls)]);
  out.score = claimed_mse;
  out.anomaly = claimed_mse > thresholds_[static_cast<std::size_t>(cls)] ||
                out.predicted_class != static_cast<std::size_t>(cls);
  return out;
}

}  // namespace baseline
