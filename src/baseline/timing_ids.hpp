// Timing-based intrusion detection in the style of CIDS (Cho & Shin,
// discussed in Section 1.2.2): each ECU's oscillator has a unique skew, so
// the accumulated clock offset of its periodic messages grows at an
// ECU-specific slope.  A recursive-least-squares estimate of that slope
// plus a CUSUM on the identification error detects when the timing
// fingerprint changes — e.g. a different (hijacking) ECU taking over an
// ID, or injected extra messages.
//
// The paper recommends pairing vProfile with exactly this kind of
// message-property IDS for coverage of attacks vProfile cannot see
// (a hijacked ECU abusing its own SAs, Section 6.1).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace baseline {

/// One observed message arrival.
struct TimedMessage {
  double time_s = 0.0;
  std::uint8_t sa = 0;
};

/// Clock-skew intrusion detector over periodic message streams.
class ClockSkewIds {
 public:
  struct Options {
    /// CUSUM control limit in residual standard deviations.
    double cusum_threshold = 8.0;
    /// CUSUM drift allowance (slack) in standard deviations.
    double cusum_slack = 0.5;
    /// Minimum training messages per SA.
    std::size_t min_train_messages = 16;
  };

  explicit ClockSkewIds(Options options) : options_(options) {}

  /// Learns, per SA, the nominal period, the clock-skew slope, and the
  /// residual jitter.  Returns false with a diagnostic when any SA has
  /// too few messages.
  bool train(const std::vector<TimedMessage>& messages, std::string* error);

  /// Online verdicts.
  enum class Verdict {
    kOk,
    kAnomaly,    // CUSUM crossed the control limit
    kUnknownSa,  // SA absent from training
  };

  /// Feeds one live message; maintains per-SA RLS + CUSUM state.
  Verdict observe(const TimedMessage& message);

  /// Trained skew (seconds of offset per message) for diagnostics.
  std::optional<double> skew_of(std::uint8_t sa) const;

  /// Resets the online state (e.g. after an alarm was handled).
  void reset_online_state();

 private:
  struct Profile {
    double period = 0.0;       // nominal inter-arrival
    double skew = 0.0;         // offset slope per message index
    double residual_sigma = 0.0;
  };
  struct Online {
    bool started = false;
    double t0 = 0.0;
    std::size_t k = 0;
    /// Offset intercept learned from the first few live messages; without
    /// it the first message's jitter would bias every CUSUM step.
    double intercept_sum = 0.0;
    std::size_t intercept_n = 0;
    double cusum_pos = 0.0;
    double cusum_neg = 0.0;
  };
  /// Live messages used to settle the intercept before scoring starts.
  static constexpr std::size_t kInterceptWarmup = 8;

  Options options_;
  std::map<std::uint8_t, Profile> profiles_;
  std::map<std::uint8_t, Online> online_;
};

}  // namespace baseline
