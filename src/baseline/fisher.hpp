// Multi-class Fisher Discriminant Analysis.
//
// SIMPLE reduces its 16 features with FDA before thresholding; this is the
// standard formulation: maximize between-class scatter relative to
// within-class scatter, solved by whitening S_w with its Cholesky factor
// and diagonalizing the whitened S_b with the Jacobi eigensolver.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace baseline {

/// A fitted FDA projection.
class FisherProjection {
 public:
  /// Fits from labelled feature vectors.  `num_classes` must cover every
  /// label; `out_dim` caps the projected dimensionality (at most
  /// num_classes - 1, the rank of S_b).  Returns std::nullopt when the
  /// within-class scatter is singular.  Throws std::invalid_argument on
  /// empty/ragged input or labels out of range.
  static std::optional<FisherProjection> fit(
      const std::vector<linalg::Vector>& xs,
      const std::vector<std::size_t>& labels, std::size_t num_classes,
      std::size_t out_dim, double ridge = 1e-8);

  std::size_t input_dim() const { return w_.rows() ? w_.cols() : 0; }
  std::size_t output_dim() const { return w_.rows(); }

  /// Projects a feature vector into discriminant space.
  linalg::Vector project(const linalg::Vector& x) const;

  /// Projection matrix (rows are discriminant directions).
  const linalg::Matrix& weights() const { return w_; }

 private:
  explicit FisherProjection(linalg::Matrix w) : w_(std::move(w)) {}
  linalg::Matrix w_;
};

}  // namespace baseline
