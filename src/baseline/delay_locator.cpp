#include "baseline/delay_locator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/welford.hpp"

namespace baseline {

DelayEstimator::DelayEstimator(std::size_t max_lag_samples,
                               double sample_rate_hz)
    : max_lag_(max_lag_samples), sample_rate_hz_(sample_rate_hz) {
  if (max_lag_samples == 0 || sample_rate_hz <= 0.0) {
    throw std::invalid_argument("DelayEstimator: invalid arguments");
  }
}

std::optional<double> DelayEstimator::estimate(const dsp::Trace& a,
                                               const dsp::Trace& b) const {
  const std::size_t n = std::min(a.size(), b.size());
  if (n < 4 * max_lag_ + 8) return std::nullopt;

  // Work on mean-removed signals so the DC level does not dominate.
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);

  // Cross-correlation over integer lags in [-max_lag, +max_lag]:
  // r(L) = sum_a (a[i]-ma) * (b[i+L]-mb); the peak lag is where b best
  // matches a shifted by L, i.e. b lags a by L samples.
  const std::ptrdiff_t max_lag = static_cast<std::ptrdiff_t>(max_lag_);
  std::vector<double> r(2 * max_lag_ + 1, 0.0);
  double energy = 0.0;
  for (std::ptrdiff_t lag = -max_lag; lag <= max_lag; ++lag) {
    double s = 0.0;
    const std::size_t first = static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, -lag));
    const std::size_t last =
        n - static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, lag));
    for (std::size_t i = first; i < last; ++i) {
      s += (a[i] - mean_a) *
           (b[static_cast<std::size_t>(static_cast<std::ptrdiff_t>(i) + lag)] -
            mean_b);
    }
    r[static_cast<std::size_t>(lag + max_lag)] = s;
    energy = std::max(energy, std::fabs(s));
  }
  if (energy <= 0.0) return std::nullopt;  // flat signals

  const auto peak_it = std::max_element(r.begin(), r.end());
  const std::size_t peak = static_cast<std::size_t>(peak_it - r.begin());

  // Parabolic interpolation around the peak for sub-sample resolution.
  double frac = 0.0;
  if (peak > 0 && peak + 1 < r.size()) {
    const double y0 = r[peak - 1];
    const double y1 = r[peak];
    const double y2 = r[peak + 1];
    const double denom = y0 - 2.0 * y1 + y2;
    if (std::fabs(denom) > 1e-12 * std::fabs(y1)) {
      frac = 0.5 * (y0 - y2) / denom;
      frac = std::clamp(frac, -0.5, 0.5);
    }
  }
  const double lag_samples =
      static_cast<double>(static_cast<std::ptrdiff_t>(peak) - max_lag) + frac;
  return lag_samples / sample_rate_hz_;
}

DelayLocatorIds::DelayLocatorIds(Options options)
    : options_(options),
      estimator_(options.max_lag_samples, options.sample_rate_hz) {}

bool DelayLocatorIds::train(const std::vector<TapPair>& pairs,
                            std::string* error) {
  auto set_error = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  std::map<std::uint8_t, stats::Welford> acc;
  for (const TapPair& p : pairs) {
    const auto delay = estimator_.estimate(p.tap_a, p.tap_b);
    if (delay) acc[p.sa].add(*delay);
  }
  if (acc.empty()) return set_error("DelayLocatorIds: no usable pairs");

  profiles_.clear();
  for (const auto& [sa, w] : acc) {
    if (w.count() < options_.min_train_messages) {
      return set_error("DelayLocatorIds: SA " + std::to_string(sa) +
                       " has too few usable pairs");
    }
    Profile p;
    p.mean = w.mean();
    // Floor the spread at a tenth of a sample period: a perfectly stable
    // estimate would otherwise make every test message an outlier.
    p.sigma = std::max(w.sample_stddev(),
                       0.1 / options_.sample_rate_hz);
    profiles_[sa] = p;
  }
  return true;
}

std::optional<DelayLocatorIds::Classification> DelayLocatorIds::classify(
    const dsp::Trace& tap_a, const dsp::Trace& tap_b,
    std::uint8_t claimed_sa) const {
  const auto it = profiles_.find(claimed_sa);
  if (it == profiles_.end()) return std::nullopt;
  const auto delay = estimator_.estimate(tap_a, tap_b);
  if (!delay) return std::nullopt;

  Classification c;
  c.delay_s = *delay;
  c.z = (*delay - it->second.mean) / it->second.sigma;
  c.anomaly = std::fabs(c.z) > options_.threshold_sigma;
  return c;
}

std::optional<double> DelayLocatorIds::delay_of(std::uint8_t sa) const {
  const auto it = profiles_.find(sa);
  if (it == profiles_.end()) return std::nullopt;
  return it->second.mean;
}

}  // namespace baseline
