// Loopback TCP front-end for the fleet wire protocol.
//
// Reuses the obs::StatusServer idiom — one accept-loop thread on a
// loopback socket — but where the status server answers one GET per
// connection, this acceptor owns long-lived ingest streams: each
// connection gets its own handler thread and its own wire::Decoder, so a
// peer that tears frames, stalls mid-header or floods garbage is
// contained to its connection (resynchronization) and, through decode
// attribution, to the tenant it claims to carry (quarantine) — never to
// the process.  Connection count is bounded; excess peers are refused at
// accept, not queued.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace fleet {

class FleetService;

struct IngestServerConfig {
  /// 0 = ephemeral; see port().
  std::uint16_t port = 0;
  /// Concurrent connections; further peers are refused at accept.
  std::size_t max_connections = 32;
  /// Per-connection read deadline, ms.  An idle-but-alive uplink is fine
  /// (the read simply times out and retries); the deadline only bounds
  /// how long shutdown and a half-dead peer can hold the handler.
  std::uint32_t read_timeout_ms = 2000;
};

struct IngestServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_refused = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t frames_decoded = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t resyncs = 0;
};

class IngestServer {
 public:
  IngestServer(FleetService* service, IngestServerConfig config);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Binds 127.0.0.1 and starts the accept loop.  Returns false with a
  /// diagnostic on failure.
  bool start(std::string* error = nullptr);

  /// Stops accepting, closes every connection, joins all threads.
  /// Idempotent.
  void stop();

  std::uint16_t port() const { return port_; }
  bool running() const { return fd_.load(std::memory_order_relaxed) >= 0; }
  IngestServerStats stats() const;

 private:
  void accept_loop();
  void serve_connection(int client_fd);
  void reap_finished_locked();

  FleetService* service_;
  IngestServerConfig config_;
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  mutable std::mutex mu_;
  struct Connection {
    int fd = -1;
    std::thread worker;
    std::atomic<bool> done{false};
  };
  std::vector<std::unique_ptr<Connection>> connections_;
  IngestServerStats stats_;
};

}  // namespace fleet
