// Sharded multi-tenant serving layer over runtime::Supervisor.
//
// One vprofile_monitor process per truck does not scale to a fleet; this
// layer multiplexes many vehicle×bus *tenants* over a pool of N shards,
// each tenant pinned to a shard by FNV-1a of its id and owning its own
// supervised pipeline, checkpoint directory, transport bookkeeping and
// health state.  The design goal is fault containment, not raw speed:
//
//  * Bulkheads — every supervisor call is exception-contained; a tenant
//    whose pipeline throws, whose watchdog gives up, or whose checkpoint
//    rots is quarantined or degraded *individually* and the rest of the
//    fleet never observes it.
//  * Transport hardening — wire decode errors are attributed to the
//    claimed tenant and quarantine it past a threshold; per-tenant
//    sequence numbers drop duplicate chunks (exactly-once scoring under
//    at-least-once delivery) and count gaps from reordered/lost chunks.
//  * Overload governors — a deterministic per-tenant quota over a rolling
//    window of fleet ingests sheds a flooding tenant's excess while its
//    neighbours keep their share, and a fleet-level admission governor
//    caps the aggregate; both decide at ingest() in arrival order, so
//    shedding is a pure function of the arrival sequence.
//  * Revival — a quarantined tenant is revived after a frame-counted
//    backoff from its per-tenant checkpoint directory (last-good fallback
//    when the newest checkpoint is corrupt), a bounded number of times;
//    past the budget it is evicted for good.
//
// Determinism: supervisors run in lockstep mode on a virtual clock that
// advances with the tenant's own accepted-frame count, and all shedding /
// dedup / quarantine decisions happen at ingest() in arrival order.  A
// fleet run is therefore a pure function of the per-tenant input
// sequences — per-tenant fingerprints are bit-identical across repeated
// runs AND across shard counts and threading modes, which is what the
// chaos harness (tests/test_fleet_chaos.cpp) asserts.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/model.hpp"
#include "dsp/trace.hpp"
#include "fleet/wire.hpp"
#include "runtime/supervisor.hpp"

namespace obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace obs

namespace fleet {

/// Tenant lifecycle.  kActive and kDegraded are serving states (degraded
/// = impaired but scoring: watchdog gave up, rollback landed, or the
/// tenant was revived from a last-good checkpoint); kQuarantined drops
/// frames while awaiting revival; kEvicted and kDrained are terminal.
enum class TenantState {
  kActive,
  kDegraded,
  kQuarantined,
  kEvicted,
  kDrained,
};

const char* to_string(TenantState state);

/// Wire-transport bookkeeping, per tenant.
struct TransportStats {
  std::uint64_t frames = 0;             // decoded frames attributed here
  std::uint64_t duplicates_dropped = 0; // seq below the expected cursor
  std::uint64_t gaps_detected = 0;      // missing seqs skipped over
  std::uint64_t decode_errors = 0;      // corrupt chunks claiming this id
};

/// Per-tenant defaults applied at register_tenant().
struct TenantConfig {
  /// Supervisor template.  checkpoint_dir is overwritten with the
  /// tenant's own directory under FleetConfig::checkpoint_root.  For the
  /// determinism contract, keep lockstep=true and num_workers=1.
  runtime::SupervisorConfig supervisor;
  /// Pending frames per tenant in threaded mode; beyond this the frame is
  /// dropped and counted (the backstop bulkhead, not the governor).
  std::size_t queue_capacity = 1024;
  /// Deterministic overload governor: within each window of
  /// `governor_window` fleet-offered frames, at most `governor_quota`
  /// frames per tenant are admitted; the excess is shed.  0 disables.
  std::size_t governor_window = 0;
  std::size_t governor_quota = 0;
  /// Wire decode errors attributed to a tenant before it is quarantined.
  /// 0 disables wire-triggered quarantine.
  std::size_t quarantine_decode_errors = 8;
  /// Revival attempts before a quarantined tenant is evicted.
  std::uint32_t revive_max_attempts = 2;
  /// Frames offered to the quarantined tenant before a revival attempt.
  std::uint64_t revive_backoff_frames = 64;
  /// Virtual nanoseconds per accepted frame on the tenant's supervision
  /// clock (drives the watchdog deterministically).
  std::uint64_t tick_ns_per_frame = 1'000'000;
};

struct FleetConfig {
  std::size_t num_shards = 4;
  /// true: one worker thread per shard drains the per-tenant queues.
  /// false: ingest() routes synchronously on the caller's thread (the
  /// chaos harness's reference mode).  Per-tenant results are
  /// bit-identical either way; see the determinism note above.
  bool threaded = false;
  /// Root of the directory-per-tenant checkpoint layout; "" disables
  /// checkpointing fleet-wide.
  std::string checkpoint_root;
  /// Fleet-level admission governor: at most `admission_quota` accepted
  /// frames per window of `admission_window` offered frames.  0 disables.
  std::size_t admission_window = 0;
  std::size_t admission_quota = 0;
  TenantConfig tenant;
  obs::MetricsRegistry* metrics = nullptr;
};

/// Why ingest() did not forward a frame (kAccepted means it did).
enum class IngestResult {
  kAccepted,
  kShedGovernor,        // per-tenant quota exceeded in this window
  kRejectedAdmission,   // fleet-wide quota exceeded in this window
  kUnknownTenant,
  kUnavailable,         // quarantined / evicted / drained
  kQueueFull,           // threaded-mode backstop
  kFinished,            // service already drained
};

const char* to_string(IngestResult result);

struct TenantSnapshot {
  std::string id;
  std::size_t shard = 0;
  TenantState state = TenantState::kActive;
  std::string reason;
  runtime::HealthState health = runtime::HealthState::kHealthy;
  TransportStats transport;
  std::uint64_t frames_offered = 0;
  std::uint64_t frames_accepted = 0;
  std::uint64_t frames_shed = 0;
  std::uint64_t frames_dropped_unavailable = 0;
  std::uint64_t frames_dropped_queue_full = 0;
  std::uint32_t revive_attempts = 0;
  std::uint64_t generations = 1;  // supervisor incarnations
  bool recovered_last_good = false;
  /// Chained FNV fold of every supervisor generation's fingerprint.
  std::uint64_t fingerprint = 0;
  /// Supervisor stats accumulated across generations (+ live).
  runtime::SupervisorStats supervisor;
};

struct FleetStats {
  std::uint64_t frames_offered = 0;
  std::uint64_t frames_accepted = 0;
  std::uint64_t frames_shed = 0;
  std::uint64_t admission_rejected = 0;
  std::uint64_t dropped_unavailable = 0;
  std::uint64_t dropped_queue_full = 0;
  std::uint64_t unknown_tenant_frames = 0;
  std::uint64_t wire_frames = 0;
  std::uint64_t wire_errors = 0;
  std::uint64_t wire_unattributed_errors = 0;
  std::uint64_t wire_duplicates = 0;
  std::uint64_t wire_gaps = 0;
  std::uint64_t tenants_registered = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t revivals = 0;
  std::uint64_t evictions = 0;
};

/// Filesystem-safe per-tenant checkpoint directory under `root`: the id
/// with non-[A-Za-z0-9._-] bytes replaced by '_', suffixed with the
/// CRC-32 of the raw id so distinct ids never collide after
/// sanitization ("a/0" and "a_0" map to different directories).
std::string tenant_checkpoint_dir(const std::string& root,
                                  const std::string& tenant_id);

/// FNV-1a shard pin for a tenant id.
std::size_t shard_of(const std::string& tenant_id, std::size_t num_shards);

class FleetService {
 public:
  explicit FleetService(FleetConfig config);
  ~FleetService();

  FleetService(const FleetService&) = delete;
  FleetService& operator=(const FleetService&) = delete;

  /// Registers a tenant with its trained model.  Returns false (with a
  /// diagnostic) on duplicate id, empty id, or after finish().
  bool register_tenant(const std::string& id, vprofile::Model model,
                       std::string* error = nullptr);

  /// Same, with a per-tenant supervisor config overriding the template
  /// (checkpoint_dir is still replaced with the tenant's own directory).
  /// The chaos harness uses this to aim fault plans at specific tenants.
  bool register_tenant(const std::string& id, vprofile::Model model,
                       const runtime::SupervisorConfig& supervisor,
                       std::string* error = nullptr);

  /// Offers one trace to a tenant.  Applies admission + governor +
  /// availability checks in arrival order, then routes to the tenant's
  /// shard (inline when not threaded).  Thread-safe.
  IngestResult ingest(const std::string& tenant_id, dsp::Trace trace);

  /// Applies one decoded wire event: frames go through seq dedup/gap
  /// tracking and then ingest(); decode errors are attributed to the
  /// claimed tenant and can quarantine it.  Thread-safe.
  IngestResult handle_wire_event(const wire::Decoder::Event& event);

  /// Finishes one tenant's supervisor (terminal; further frames are
  /// dropped as kUnavailable).  The wire kDrain frame routes here.
  void drain_tenant(const std::string& tenant_id);

  /// Drains every tenant and stops the shard threads.  Idempotent.
  void finish();

  bool finished() const;

  std::optional<TenantSnapshot> tenant(const std::string& id) const;
  /// Every tenant, sorted by id (deterministic order).
  std::vector<TenantSnapshot> tenants() const;
  FleetStats stats() const;

  /// Fold of every tenant's fingerprint in sorted-id order — the whole-
  /// fleet equivalence check.  Deterministic fields only.
  std::uint64_t fingerprint() const;

  /// Deterministic JSON for /statusz: aggregate stats plus the per-tenant
  /// table (sorted by id, no wall-clock fields) — byte-stable across
  /// runs, shard counts and threading modes.
  std::string statusz_json() const;

  const FleetConfig& config() const { return config_; }

 private:
  struct Tenant;
  struct Shard;

  /// Commands executed on the tenant's shard (inline when not threaded).
  struct Command {
    enum class Kind { kFrame, kQuarantine, kRevive, kDrain };
    Kind kind = Kind::kFrame;
    Tenant* tenant = nullptr;
    dsp::Trace trace;
    std::string reason;
  };

  /// Bookkeeping decision made under mu_ at ingest time, plus the
  /// commands to dispatch once the lock is released.
  struct AdmitOutcome {
    IngestResult result = IngestResult::kUnavailable;
    bool enqueue = false;  // forward the frame to the tenant's shard
    bool revive = false;   // dispatch a revival attempt
  };
  AdmitOutcome admit_locked(Tenant& tenant);
  void dispatch(Command&& cmd);
  void execute(Command&& cmd);
  void shard_loop(Shard& shard);

  // Tenant operations; run on the owning shard, never under mu_ while
  // calling into the supervisor.
  void run_frame(Tenant& tenant, dsp::Trace&& trace);
  void apply_quarantine(Tenant& tenant, const std::string& reason);
  void apply_revive(Tenant& tenant);
  void apply_drain(Tenant& tenant);
  /// Folds the live supervisor's stats/fingerprint into the tenant
  /// accumulators and destroys it.  Exception-contained.
  void retire_supervisor_locked(Tenant& tenant);
  void update_health_locked(Tenant& tenant);
  void set_state_locked(Tenant& tenant, TenantState state,
                        const std::string& reason);

  TenantSnapshot snapshot_locked(const Tenant& tenant) const;

  FleetConfig config_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool finished_ = false;
  FleetStats stats_;
  std::uint64_t admission_window_id_ = 0;
  std::uint64_t admission_window_count_ = 0;

  struct Instruments {
    obs::Counter* ingested = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* admission_rejected = nullptr;
    obs::Counter* wire_frames = nullptr;
    obs::Counter* wire_errors = nullptr;
    obs::Counter* quarantines = nullptr;
    obs::Counter* revivals = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Gauge* active = nullptr;
  } instruments_;
};

}  // namespace fleet
