// Hardened length-prefixed binary wire format for fleet trace ingest.
//
// One backend serving thousands of vehicle×bus tenants cannot trust its
// transport: a truck-side uplink reconnecting mid-frame delivers torn
// bytes, a flaky relay duplicates or reorders chunks, and a hostile peer
// sends garbage dressed up as length prefixes.  The codec therefore
// treats every byte as adversarial.  Each frame is:
//
//   magic "VPW1" | u32 payload_len | payload | u32 crc32(payload)
//
// with the payload carrying the tenant identity, a per-tenant sequence
// number and the raw ADC trace:
//
//   u8 kind | u16 tenant_len | tenant bytes | u64 seq
//   | u32 sample_count | sample_count × f64 (IEEE-754 bit patterns, LE)
//
// Decoding never throws and never reads past the fed bytes.  A frame
// whose magic, lengths, CRC or internal consistency fail is *skipped*:
// the decoder discards bytes until the next plausible magic and reports
// the error with whatever tenant attribution the payload still supports,
// so the service can quarantine the offending tenant instead of dying —
// per-connection resynchronization is the transport-level bulkhead.
//
// All integers are little-endian on the wire; encoding and decoding go
// through explicit byte shifts, so the format is host-endianness-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "dsp/trace.hpp"

namespace fleet::wire {

/// First bytes of every frame ("VPW1" in ASCII order on the wire).
inline constexpr unsigned char kMagic[4] = {'V', 'P', 'W', '1'};

/// Hard ceilings a hostile length prefix cannot talk the decoder out of.
inline constexpr std::size_t kMaxTenantBytes = 256;
inline constexpr std::size_t kMaxSamples = 1u << 20;
inline constexpr std::size_t kMaxPayloadBytes =
    1 + 2 + kMaxTenantBytes + 8 + 4 + kMaxSamples * 8;

/// Frame kinds.  kData carries a trace; kDrain asks the service to finish
/// the tenant's in-flight work (used by clients that want a synchronous
/// hand-off before disconnecting).
enum class FrameKind : std::uint8_t {
  kData = 1,
  kDrain = 2,
};

/// One decoded frame.
struct Frame {
  FrameKind kind = FrameKind::kData;
  std::string tenant;
  /// Per-tenant monotone sequence number assigned by the sender; the
  /// service uses it to drop duplicates and to detect gaps.
  std::uint64_t seq = 0;
  dsp::Trace samples;
};

/// Why a chunk of bytes failed to decode as a frame.
enum class DecodeError : std::uint8_t {
  kNone = 0,
  kBadMagic,       // resynchronized past garbage bytes
  kOversized,      // length prefix beyond kMaxPayloadBytes
  kBadCrc,         // payload checksum mismatch (torn or corrupted frame)
  kBadPayload,     // lengths inconsistent with payload_len, or bad kind
};

const char* to_string(DecodeError error);

/// Serializes one frame (always valid output; inputs beyond the ceilings
/// are clamped by the caller's contract — encode() returns "" when
/// `tenant` or `samples` exceed the wire ceilings instead of producing an
/// undecodable frame).
std::string encode(const Frame& frame);

/// Incremental per-connection decoder.  Feed bytes as they arrive, then
/// pull events until kNeedMore.  The decoder owns a bounded reassembly
/// buffer: bytes for a frame larger than the ceiling are discarded during
/// resync, so a hostile peer cannot balloon memory.
class Decoder {
 public:
  struct Stats {
    std::uint64_t frames_decoded = 0;
    std::uint64_t bytes_consumed = 0;
    std::uint64_t resyncs = 0;          // garbage runs skipped
    std::uint64_t bytes_skipped = 0;    // bytes discarded resynchronizing
    std::uint64_t errors = 0;           // frames rejected (crc/length/...)
  };

  /// One decode event: either a frame, or an error with best-effort
  /// tenant attribution (the claimed tenant string when the payload's
  /// tenant field still parsed within bounds — enough to quarantine a
  /// tenant that keeps sending corrupt chunks, while a frame too mangled
  /// to attribute only counts against the connection).
  struct Event {
    DecodeError error = DecodeError::kNone;
    std::optional<Frame> frame;        // set when error == kNone
    std::string claimed_tenant;        // may be empty on errors
  };

  /// Appends received bytes to the reassembly buffer.
  void feed(const void* data, std::size_t len);

  /// Next decode event, or std::nullopt when more bytes are needed.
  /// Never throws; never reads outside the fed bytes.
  std::optional<Event> next();

  const Stats& stats() const { return stats_; }
  std::size_t buffered() const { return buffer_.size() - cursor_; }

 private:
  /// Drops `n` bytes from the front of the logical buffer.
  void consume(std::size_t n);
  /// Scans forward for the next magic; returns bytes skipped.
  std::size_t resync();

  std::string buffer_;
  std::size_t cursor_ = 0;
  Stats stats_;
};

}  // namespace fleet::wire
