#include "fleet/fleet_service.hpp"

#include <cstdio>
#include <utility>

#include "io/checksum.hpp"
#include "obs/metrics.hpp"

namespace fleet {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv_bytes(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t v) {
  return fnv_bytes(h, &v, sizeof(v));
}

bool is_serving(TenantState state) {
  return state == TenantState::kActive || state == TenantState::kDegraded;
}

void accumulate(runtime::SupervisorStats& into,
                const runtime::SupervisorStats& add) {
  into.frames_offered += add.frames_offered;
  into.frames_submitted += add.frames_submitted;
  into.frames_decimated += add.frames_decimated;
  into.frames_handled += add.frames_handled;
  into.worker_errors += add.worker_errors;
  into.restarts += add.restarts;
  into.stalls_detected += add.stalls_detected;
  into.drift_alarms += add.drift_alarms;
  into.candidates_started += add.candidates_started;
  into.promotions += add.promotions;
  into.rollbacks += add.rollbacks;
  into.checkpoints_committed += add.checkpoints_committed;
  into.gate.accepted += add.gate.accepted;
  into.gate.rejected_verdict += add.gate.rejected_verdict;
  into.gate.rejected_margin += add.gate.rejected_margin;
  into.gate.refused_by_updater += add.gate.refused_by_updater;
}

std::int64_t state_gauge_value(TenantState state) {
  return static_cast<std::int64_t>(state);
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_kv(std::string& out, const char* key, std::uint64_t value,
               bool comma = true) {
  out += '"';
  out += key;
  out += "\":";
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out += buf;
  if (comma) out += ',';
}

void append_kv_str(std::string& out, const char* key, const std::string& value,
                   bool comma = true) {
  out += '"';
  out += key;
  out += "\":\"";
  json_escape_into(out, value);
  out += '"';
  if (comma) out += ',';
}

std::string hex_fingerprint(std::uint64_t fp) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

}  // namespace

const char* to_string(TenantState state) {
  switch (state) {
    case TenantState::kActive:
      return "active";
    case TenantState::kDegraded:
      return "degraded";
    case TenantState::kQuarantined:
      return "quarantined";
    case TenantState::kEvicted:
      return "evicted";
    case TenantState::kDrained:
      return "drained";
  }
  return "unknown";
}

const char* to_string(IngestResult result) {
  switch (result) {
    case IngestResult::kAccepted:
      return "accepted";
    case IngestResult::kShedGovernor:
      return "shed_governor";
    case IngestResult::kRejectedAdmission:
      return "rejected_admission";
    case IngestResult::kUnknownTenant:
      return "unknown_tenant";
    case IngestResult::kUnavailable:
      return "unavailable";
    case IngestResult::kQueueFull:
      return "queue_full";
    case IngestResult::kFinished:
      return "finished";
  }
  return "unknown";
}

std::string tenant_checkpoint_dir(const std::string& root,
                                  const std::string& tenant_id) {
  std::string dir = root;
  if (!dir.empty() && dir.back() != '/') dir += '/';
  for (const char c : tenant_id) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    dir += safe ? c : '_';
  }
  // CRC suffix keeps sanitized collisions ("a/0" vs "a_0") apart.
  char buf[16];
  std::snprintf(buf, sizeof(buf), "-%08x", io::crc32(tenant_id));
  dir += buf;
  return dir;
}

std::size_t shard_of(const std::string& tenant_id, std::size_t num_shards) {
  if (num_shards == 0) return 0;
  return static_cast<std::size_t>(
      fnv_bytes(kFnvOffset, tenant_id.data(), tenant_id.size()) % num_shards);
}

struct FleetService::Tenant {
  std::string id;
  std::size_t shard = 0;
  TenantState state = TenantState::kActive;
  std::string reason = "registered";
  runtime::HealthState health = runtime::HealthState::kHealthy;

  std::optional<vprofile::Model> initial_model;  // revival fallback
  runtime::SupervisorConfig sup_config;
  std::unique_ptr<runtime::Supervisor> sup;

  TransportStats transport;
  std::uint64_t next_wire_seq = 0;

  std::uint64_t frames_offered = 0;
  std::uint64_t frames_accepted = 0;
  std::uint64_t frames_shed = 0;
  std::uint64_t frames_dropped_unavailable = 0;
  std::uint64_t frames_dropped_queue_full = 0;
  std::uint64_t pending = 0;  // enqueued, not yet executed

  std::uint64_t window_id = 0;
  std::uint64_t window_count = 0;

  std::uint32_t revive_attempts = 0;
  std::uint64_t quarantined_at_offer = 0;
  bool revive_pending = false;
  bool quarantine_pending = false;
  bool drain_pending = false;
  bool recovered_last_good = false;

  /// Per-generation virtual clock, in accepted frames.
  std::uint64_t clock_frames = 0;
  std::uint64_t generations = 1;
  /// Fold of finished generations' fingerprints.
  std::uint64_t fingerprint_chain = kFnvOffset;
  runtime::SupervisorStats acc_stats;  // finished generations

  obs::Counter* frames_metric = nullptr;
  obs::Gauge* state_metric = nullptr;
};

struct FleetService::Shard {
  std::size_t index = 0;
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Command> queue;
  bool stop = false;
  std::thread worker;
};

FleetService::FleetService(FleetConfig config) : config_(std::move(config)) {
  if (config_.num_shards == 0) config_.num_shards = 1;
  if (config_.metrics != nullptr) {
    auto* m = config_.metrics;
    instruments_.ingested = m->counter("fleet_frames_ingested_total");
    instruments_.shed = m->counter("fleet_frames_shed_total");
    instruments_.admission_rejected =
        m->counter("fleet_admission_rejected_total");
    instruments_.wire_frames = m->counter("fleet_wire_frames_total");
    instruments_.wire_errors = m->counter("fleet_wire_errors_total");
    instruments_.quarantines = m->counter("fleet_quarantines_total");
    instruments_.revivals = m->counter("fleet_revivals_total");
    instruments_.evictions = m->counter("fleet_evictions_total");
    instruments_.active =
        m->gauge("fleet_tenants_active");  // vprofile-lint: allow(metric-name)
  }
  shards_.reserve(config_.num_shards);
  for (std::size_t i = 0; i < config_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shards_.push_back(std::move(shard));
  }
  if (config_.threaded) {
    for (auto& shard : shards_) {
      shard->worker = std::thread([this, s = shard.get()] { shard_loop(*s); });
    }
  }
}

FleetService::~FleetService() { finish(); }

bool FleetService::register_tenant(const std::string& id, vprofile::Model model,
                                   std::string* error) {
  return register_tenant(id, std::move(model), config_.tenant.supervisor,
                         error);
}

bool FleetService::register_tenant(const std::string& id, vprofile::Model model,
                                   const runtime::SupervisorConfig& supervisor,
                                   std::string* error) {
  auto fail = [&](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (id.empty()) return fail("empty tenant id");
  if (id.size() > wire::kMaxTenantBytes) return fail("tenant id too long");

  auto tenant = std::make_unique<Tenant>();
  tenant->id = id;
  tenant->shard = shard_of(id, config_.num_shards);
  tenant->initial_model = model;
  tenant->sup_config = supervisor;
  tenant->sup_config.checkpoint_dir =
      config_.checkpoint_root.empty()
          ? std::string()
          : tenant_checkpoint_dir(config_.checkpoint_root, id);
  try {
    tenant->sup = std::make_unique<runtime::Supervisor>(std::move(model),
                                                        tenant->sup_config);
  } catch (const std::exception& e) {
    if (error != nullptr) {
      *error = std::string("supervisor construction failed: ") + e.what();
    }
    return false;
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return fail("fleet already finished");
  if (tenants_.count(id) != 0) return fail("duplicate tenant id");
  if (config_.metrics != nullptr) {
    const obs::Labels labels = {{"tenant", id}};
    tenant->frames_metric =
        config_.metrics->counter("fleet_tenant_frames_total", labels);
    auto* m = config_.metrics;
    tenant->state_metric =
        m->gauge("fleet_tenant_state", labels);  // vprofile-lint: allow(metric-name)
    tenant->state_metric->set(state_gauge_value(tenant->state));
  }
  ++stats_.tenants_registered;
  if (instruments_.active != nullptr) instruments_.active->add(1);
  tenants_.emplace(id, std::move(tenant));
  return true;
}

FleetService::AdmitOutcome FleetService::admit_locked(Tenant& tenant) {
  AdmitOutcome out;
  ++stats_.frames_offered;
  ++tenant.frames_offered;

  if (!is_serving(tenant.state)) {
    ++tenant.frames_dropped_unavailable;
    ++stats_.dropped_unavailable;
    out.result = IngestResult::kUnavailable;
    if (tenant.state == TenantState::kQuarantined && !tenant.revive_pending &&
        tenant.frames_offered - tenant.quarantined_at_offer >=
            config_.tenant.revive_backoff_frames) {
      if (tenant.revive_attempts >= config_.tenant.revive_max_attempts) {
        set_state_locked(tenant, TenantState::kEvicted,
                         "revival budget exhausted");
        ++stats_.evictions;
        if (instruments_.evictions != nullptr) instruments_.evictions->add(1);
      } else {
        ++tenant.revive_attempts;
        tenant.revive_pending = true;
        out.revive = true;
      }
    }
    return out;
  }

  // Fleet-level admission governor: a hard cap on accepted frames per
  // window of offers, whoever they belong to.
  if (config_.admission_window != 0) {
    const std::uint64_t wid =
        (stats_.frames_offered - 1) / config_.admission_window;
    if (wid != admission_window_id_) {
      admission_window_id_ = wid;
      admission_window_count_ = 0;
    }
    ++admission_window_count_;
    if (admission_window_count_ > config_.admission_quota) {
      ++stats_.admission_rejected;
      if (instruments_.admission_rejected != nullptr) {
        instruments_.admission_rejected->add(1);
      }
      out.result = IngestResult::kRejectedAdmission;
      return out;
    }
  }

  // Per-tenant governor: a flooding tenant sheds its own excess while its
  // neighbours keep their quota.  The window is keyed on the fleet offer
  // counter, so the decision depends only on the arrival sequence.
  if (config_.tenant.governor_window != 0) {
    const std::uint64_t wid =
        (stats_.frames_offered - 1) / config_.tenant.governor_window;
    if (wid != tenant.window_id) {
      tenant.window_id = wid;
      tenant.window_count = 0;
    }
    ++tenant.window_count;
    if (tenant.window_count > config_.tenant.governor_quota) {
      ++tenant.frames_shed;
      ++stats_.frames_shed;
      if (instruments_.shed != nullptr) instruments_.shed->add(1);
      out.result = IngestResult::kShedGovernor;
      return out;
    }
  }

  if (config_.threaded && tenant.pending >= config_.tenant.queue_capacity) {
    ++tenant.frames_dropped_queue_full;
    ++stats_.dropped_queue_full;
    out.result = IngestResult::kQueueFull;
    return out;
  }

  ++tenant.frames_accepted;
  ++stats_.frames_accepted;
  ++tenant.pending;
  if (instruments_.ingested != nullptr) instruments_.ingested->add(1);
  if (tenant.frames_metric != nullptr) tenant.frames_metric->add(1);
  out.result = IngestResult::kAccepted;
  out.enqueue = true;
  return out;
}

IngestResult FleetService::ingest(const std::string& tenant_id,
                                  dsp::Trace trace) {
  Tenant* tenant = nullptr;
  AdmitOutcome out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (finished_) return IngestResult::kFinished;
    auto it = tenants_.find(tenant_id);
    if (it == tenants_.end()) {
      ++stats_.unknown_tenant_frames;
      return IngestResult::kUnknownTenant;
    }
    tenant = it->second.get();
    out = admit_locked(*tenant);
  }
  if (out.revive) {
    Command cmd;
    cmd.kind = Command::Kind::kRevive;
    cmd.tenant = tenant;
    dispatch(std::move(cmd));
  }
  if (out.enqueue) {
    Command cmd;
    cmd.kind = Command::Kind::kFrame;
    cmd.tenant = tenant;
    cmd.trace = std::move(trace);
    dispatch(std::move(cmd));
  }
  return out.result;
}

IngestResult FleetService::handle_wire_event(
    const wire::Decoder::Event& event) {
  if (event.error != wire::DecodeError::kNone) {
    Tenant* quarantinee = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (finished_) return IngestResult::kFinished;
      ++stats_.wire_errors;
      if (instruments_.wire_errors != nullptr) instruments_.wire_errors->add(1);
      auto it = event.claimed_tenant.empty()
                    ? tenants_.end()
                    : tenants_.find(event.claimed_tenant);
      if (it == tenants_.end()) {
        ++stats_.wire_unattributed_errors;
        return IngestResult::kAccepted;
      }
      Tenant& tenant = *it->second;
      ++tenant.transport.decode_errors;
      if (config_.tenant.quarantine_decode_errors != 0 &&
          tenant.transport.decode_errors >=
              config_.tenant.quarantine_decode_errors &&
          is_serving(tenant.state) && !tenant.quarantine_pending) {
        tenant.quarantine_pending = true;
        quarantinee = &tenant;
      }
    }
    if (quarantinee != nullptr) {
      Command cmd;
      cmd.kind = Command::Kind::kQuarantine;
      cmd.tenant = quarantinee;
      cmd.reason = std::string("wire corruption: ") + to_string(event.error);
      dispatch(std::move(cmd));
    }
    return IngestResult::kAccepted;
  }

  const wire::Frame& frame = *event.frame;
  if (frame.kind == wire::FrameKind::kDrain) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.wire_frames;
      if (instruments_.wire_frames != nullptr) instruments_.wire_frames->add(1);
    }
    drain_tenant(frame.tenant);
    return IngestResult::kAccepted;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (finished_) return IngestResult::kFinished;
    ++stats_.wire_frames;
    if (instruments_.wire_frames != nullptr) instruments_.wire_frames->add(1);
    auto it = tenants_.find(frame.tenant);
    if (it == tenants_.end()) {
      ++stats_.unknown_tenant_frames;
      return IngestResult::kUnknownTenant;
    }
    Tenant& tenant = *it->second;
    // At-least-once transports redeliver: a seq below the cursor is a
    // duplicate and must not be scored twice (dedup keeps the scored
    // stream — and thus the fingerprint — identical to exactly-once
    // delivery).  A seq above the cursor is lost/reordered traffic.
    if (frame.seq < tenant.next_wire_seq) {
      ++tenant.transport.duplicates_dropped;
      ++stats_.wire_duplicates;
      return IngestResult::kAccepted;
    }
    if (frame.seq > tenant.next_wire_seq) {
      const std::uint64_t missing = frame.seq - tenant.next_wire_seq;
      tenant.transport.gaps_detected += missing;
      stats_.wire_gaps += missing;
    }
    tenant.next_wire_seq = frame.seq + 1;
    ++tenant.transport.frames;
  }
  return ingest(frame.tenant, dsp::Trace(event.frame->samples));
}

void FleetService::drain_tenant(const std::string& tenant_id) {
  Tenant* tenant = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(tenant_id);
    if (it == tenants_.end()) return;
    Tenant& t = *it->second;
    if (t.drain_pending || t.state == TenantState::kDrained ||
        t.state == TenantState::kEvicted) {
      return;
    }
    t.drain_pending = true;
    tenant = &t;
  }
  Command cmd;
  cmd.kind = Command::Kind::kDrain;
  cmd.tenant = tenant;
  dispatch(std::move(cmd));
}

void FleetService::finish() {
  std::vector<Tenant*> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (finished_) return;
    finished_ = true;
    for (auto& [id, tenant] : tenants_) {
      if (!tenant->drain_pending && tenant->state != TenantState::kDrained &&
          tenant->state != TenantState::kEvicted) {
        tenant->drain_pending = true;
        pending.push_back(tenant.get());
      }
    }
  }
  for (Tenant* tenant : pending) {
    Command cmd;
    cmd.kind = Command::Kind::kDrain;
    cmd.tenant = tenant;
    dispatch(std::move(cmd));
  }
  if (config_.threaded) {
    for (auto& shard : shards_) {
      {
        std::lock_guard<std::mutex> lock(shard->mu);
        shard->stop = true;
      }
      shard->cv.notify_all();
    }
    for (auto& shard : shards_) {
      if (shard->worker.joinable()) shard->worker.join();
    }
  }
}

bool FleetService::finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_;
}

void FleetService::dispatch(Command&& cmd) {
  if (!config_.threaded) {
    execute(std::move(cmd));
    return;
  }
  Shard& shard = *shards_[cmd.tenant->shard];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // After stop the queue is no longer drained; execute inline (finish()
    // has joined or is joining the worker, so commands stay serialized).
    if (shard.stop) {
      execute(std::move(cmd));
      return;
    }
    shard.queue.push_back(std::move(cmd));
  }
  shard.cv.notify_one();
}

void FleetService::shard_loop(Shard& shard) {
  for (;;) {
    Command cmd;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.cv.wait(lock,
                    [&shard] { return shard.stop || !shard.queue.empty(); });
      if (shard.queue.empty()) {
        if (shard.stop) return;
        continue;
      }
      cmd = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    execute(std::move(cmd));
  }
}

void FleetService::execute(Command&& cmd) {
  switch (cmd.kind) {
    case Command::Kind::kFrame:
      run_frame(*cmd.tenant, std::move(cmd.trace));
      break;
    case Command::Kind::kQuarantine:
      apply_quarantine(*cmd.tenant, cmd.reason);
      break;
    case Command::Kind::kRevive:
      apply_revive(*cmd.tenant);
      break;
    case Command::Kind::kDrain:
      apply_drain(*cmd.tenant);
      break;
  }
}

void FleetService::run_frame(Tenant& tenant, dsp::Trace&& trace) {
  runtime::Supervisor* sup = nullptr;
  std::uint64_t now_ns = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tenant.pending > 0) --tenant.pending;
    if (!is_serving(tenant.state) || tenant.sup == nullptr) {
      ++tenant.frames_dropped_unavailable;
      ++stats_.dropped_unavailable;
      return;
    }
    sup = tenant.sup.get();
    ++tenant.clock_frames;
    now_ns = tenant.clock_frames * config_.tenant.tick_ns_per_frame;
  }
  // The supervisor call happens outside mu_; per-tenant serialization is
  // the shard's job (commands for one tenant always land on its shard).
  try {
    sup->submit(std::move(trace));
    sup->poll(now_ns);
  } catch (const std::exception& e) {
    apply_quarantine(tenant, std::string("supervisor exception: ") + e.what());
    return;
  } catch (...) {
    apply_quarantine(tenant, "supervisor exception");
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  update_health_locked(tenant);
}

void FleetService::apply_quarantine(Tenant& tenant, const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  tenant.quarantine_pending = false;
  if (tenant.state == TenantState::kEvicted ||
      tenant.state == TenantState::kDrained) {
    retire_supervisor_locked(tenant);
    return;
  }
  if (tenant.state == TenantState::kQuarantined) return;
  retire_supervisor_locked(tenant);
  set_state_locked(tenant, TenantState::kQuarantined, reason);
  tenant.quarantined_at_offer = tenant.frames_offered;
  ++stats_.quarantines;
  if (instruments_.quarantines != nullptr) instruments_.quarantines->add(1);
}

void FleetService::apply_revive(Tenant& tenant) {
  runtime::SupervisorConfig sup_config;
  std::optional<vprofile::Model> fallback;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tenant.state != TenantState::kQuarantined) {
      tenant.revive_pending = false;
      return;
    }
    sup_config = tenant.sup_config;
    fallback = tenant.initial_model;
  }

  // Checkpoint load and supervisor construction are slow; do them off the
  // service lock.  Only this tenant's shard executes revive commands, so
  // nobody else can be installing a supervisor concurrently.
  std::optional<vprofile::Model> model;
  bool recovered = false;
  std::string how = "revived from initial model";
  if (!sup_config.checkpoint_dir.empty()) {
    runtime::CheckpointStore store(sup_config.checkpoint_dir);
    if (store.has_checkpoint()) {
      auto loaded = store.load();
      if (loaded.model.has_value()) {
        model = std::move(loaded.model);
        recovered = loaded.recovered_last_good;
        how = recovered ? "revived from last-good checkpoint"
                        : "revived from checkpoint";
      }
    }
  }
  if (!model.has_value()) model = std::move(fallback);

  std::unique_ptr<runtime::Supervisor> sup;
  try {
    sup = std::make_unique<runtime::Supervisor>(std::move(*model), sup_config);
  } catch (...) {
    // Failed revival burns the attempt but keeps the tenant quarantined;
    // the next backoff expiry tries again (or evicts).
    std::lock_guard<std::mutex> lock(mu_);
    tenant.revive_pending = false;
    tenant.quarantined_at_offer = tenant.frames_offered;
    return;
  }

  std::lock_guard<std::mutex> lock(mu_);
  tenant.sup = std::move(sup);
  tenant.clock_frames = 0;
  ++tenant.generations;
  tenant.revive_pending = false;
  tenant.recovered_last_good = tenant.recovered_last_good || recovered;
  tenant.health = runtime::HealthState::kHealthy;
  set_state_locked(tenant,
                   recovered ? TenantState::kDegraded : TenantState::kActive,
                   how);
  ++stats_.revivals;
  if (instruments_.revivals != nullptr) instruments_.revivals->add(1);
}

void FleetService::apply_drain(Tenant& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  tenant.drain_pending = false;
  if (tenant.state == TenantState::kEvicted ||
      tenant.state == TenantState::kDrained) {
    return;
  }
  retire_supervisor_locked(tenant);
  set_state_locked(tenant, TenantState::kDrained, "drained");
}

void FleetService::retire_supervisor_locked(Tenant& tenant) {
  if (tenant.sup == nullptr) return;
  try {
    tenant.sup->finish();
  } catch (...) {
    // A supervisor that cannot even finish still gets retired; the
    // bulkhead's whole point is that this never propagates.
  }
  try {
    accumulate(tenant.acc_stats, tenant.sup->stats());
    tenant.fingerprint_chain =
        fnv_u64(tenant.fingerprint_chain, tenant.sup->fingerprint());
    tenant.health = tenant.sup->health();
  } catch (...) {
  }
  tenant.sup.reset();
}

void FleetService::update_health_locked(Tenant& tenant) {
  if (tenant.sup == nullptr) return;
  tenant.health = tenant.sup->health();
  if (tenant.health == runtime::HealthState::kDegraded &&
      tenant.state == TenantState::kActive) {
    set_state_locked(tenant, TenantState::kDegraded, "supervisor degraded");
  }
}

void FleetService::set_state_locked(Tenant& tenant, TenantState state,
                                    const std::string& reason) {
  const bool was_serving = is_serving(tenant.state);
  tenant.state = state;
  tenant.reason = reason;
  if (tenant.state_metric != nullptr) {
    tenant.state_metric->set(state_gauge_value(state));
  }
  const bool now_serving = is_serving(state);
  if (instruments_.active != nullptr && was_serving != now_serving) {
    instruments_.active->add(now_serving ? 1 : -1);
  }
}

TenantSnapshot FleetService::snapshot_locked(const Tenant& tenant) const {
  TenantSnapshot snap;
  snap.id = tenant.id;
  snap.shard = tenant.shard;
  snap.state = tenant.state;
  snap.reason = tenant.reason;
  snap.health = tenant.health;
  snap.transport = tenant.transport;
  snap.frames_offered = tenant.frames_offered;
  snap.frames_accepted = tenant.frames_accepted;
  snap.frames_shed = tenant.frames_shed;
  snap.frames_dropped_unavailable = tenant.frames_dropped_unavailable;
  snap.frames_dropped_queue_full = tenant.frames_dropped_queue_full;
  snap.revive_attempts = tenant.revive_attempts;
  snap.generations = tenant.generations;
  snap.recovered_last_good = tenant.recovered_last_good;
  snap.fingerprint = tenant.fingerprint_chain;
  snap.supervisor = tenant.acc_stats;
  if (tenant.sup != nullptr) {
    snap.health = tenant.sup->health();
    accumulate(snap.supervisor, tenant.sup->stats());
    snap.fingerprint = fnv_u64(snap.fingerprint, tenant.sup->fingerprint());
  }
  return snap;
}

std::optional<TenantSnapshot> FleetService::tenant(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(id);
  if (it == tenants_.end()) return std::nullopt;
  return snapshot_locked(*it->second);
}

std::vector<TenantSnapshot> FleetService::tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TenantSnapshot> out;
  out.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_) {
    out.push_back(snapshot_locked(*tenant));
  }
  return out;
}

FleetStats FleetService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::uint64_t FleetService::fingerprint() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t h = kFnvOffset;
  for (const auto& [id, tenant] : tenants_) {
    h = fnv_bytes(h, id.data(), id.size());
    const TenantSnapshot snap = snapshot_locked(*tenant);
    h = fnv_u64(h, snap.fingerprint);
    h = fnv_u64(h, static_cast<std::uint64_t>(snap.state));
  }
  return h;
}

std::string FleetService::statusz_json() const {
  std::vector<TenantSnapshot> snaps;
  FleetStats fleet;
  std::uint64_t fleet_fp = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fleet = stats_;
    snaps.reserve(tenants_.size());
    std::uint64_t h = kFnvOffset;
    for (const auto& [id, tenant] : tenants_) {
      const TenantSnapshot snap = snapshot_locked(*tenant);
      h = fnv_bytes(h, id.data(), id.size());
      h = fnv_u64(h, snap.fingerprint);
      h = fnv_u64(h, static_cast<std::uint64_t>(snap.state));
      snaps.push_back(snap);
    }
    fleet_fp = h;
  }

  std::string out = "{\"fleet\":{";
  append_kv(out, "tenants", static_cast<std::uint64_t>(snaps.size()));
  append_kv(out, "frames_offered", fleet.frames_offered);
  append_kv(out, "frames_accepted", fleet.frames_accepted);
  append_kv(out, "frames_shed", fleet.frames_shed);
  append_kv(out, "admission_rejected", fleet.admission_rejected);
  append_kv(out, "dropped_unavailable", fleet.dropped_unavailable);
  append_kv(out, "dropped_queue_full", fleet.dropped_queue_full);
  append_kv(out, "unknown_tenant_frames", fleet.unknown_tenant_frames);
  append_kv(out, "wire_frames", fleet.wire_frames);
  append_kv(out, "wire_errors", fleet.wire_errors);
  append_kv(out, "wire_unattributed_errors", fleet.wire_unattributed_errors);
  append_kv(out, "wire_duplicates", fleet.wire_duplicates);
  append_kv(out, "wire_gaps", fleet.wire_gaps);
  append_kv(out, "quarantines", fleet.quarantines);
  append_kv(out, "revivals", fleet.revivals);
  append_kv(out, "evictions", fleet.evictions);
  append_kv_str(out, "fingerprint", hex_fingerprint(fleet_fp), false);
  out += "},\"tenants\":[";
  bool first = true;
  for (const TenantSnapshot& snap : snaps) {
    if (!first) out += ',';
    first = false;
    out += '{';
    append_kv_str(out, "id", snap.id);
    append_kv(out, "shard", static_cast<std::uint64_t>(snap.shard));
    append_kv_str(out, "state", to_string(snap.state));
    append_kv_str(out, "reason", snap.reason);
    append_kv_str(out, "health", runtime::to_string(snap.health));
    append_kv(out, "frames_offered", snap.frames_offered);
    append_kv(out, "frames_accepted", snap.frames_accepted);
    append_kv(out, "frames_shed", snap.frames_shed);
    append_kv(out, "dropped_unavailable", snap.frames_dropped_unavailable);
    append_kv(out, "dropped_queue_full", snap.frames_dropped_queue_full);
    out += "\"wire\":{";
    append_kv(out, "frames", snap.transport.frames);
    append_kv(out, "duplicates_dropped", snap.transport.duplicates_dropped);
    append_kv(out, "gaps_detected", snap.transport.gaps_detected);
    append_kv(out, "decode_errors", snap.transport.decode_errors, false);
    out += "},";
    append_kv(out, "revive_attempts", snap.revive_attempts);
    append_kv(out, "generations", snap.generations);
    out += "\"recovered_last_good\":";
    out += snap.recovered_last_good ? "true," : "false,";
    append_kv_str(out, "fingerprint", hex_fingerprint(snap.fingerprint));
    out += "\"supervisor\":{";
    append_kv(out, "frames_handled", snap.supervisor.frames_handled);
    append_kv(out, "restarts", snap.supervisor.restarts);
    append_kv(out, "stalls_detected", snap.supervisor.stalls_detected);
    append_kv(out, "drift_alarms", snap.supervisor.drift_alarms);
    append_kv(out, "promotions", snap.supervisor.promotions);
    append_kv(out, "rollbacks", snap.supervisor.rollbacks);
    append_kv(out, "checkpoints_committed", snap.supervisor.checkpoints_committed,
              false);
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace fleet
