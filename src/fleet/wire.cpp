#include "fleet/wire.hpp"

#include <bit>
#include <cstring>

#include "io/checksum.hpp"

namespace fleet::wire {

namespace {

constexpr std::size_t kHeaderBytes = 4 + 4;  // magic + payload_len
constexpr std::size_t kTrailerBytes = 4;     // crc32

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    static_cast<std::uint16_t>(p[1]) << 8);
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// Parses the payload body into a frame.  Returns kNone on success; on
/// failure `claimed` receives the tenant string when the tenant field
/// itself was still within bounds (best-effort attribution).
DecodeError parse_payload(const unsigned char* p, std::size_t len,
                          Frame* out, std::string* claimed) {
  // Fixed prefix: kind(1) + tenant_len(2).
  if (len < 1 + 2) return DecodeError::kBadPayload;
  const std::uint8_t kind = p[0];
  const std::size_t tenant_len = get_u16(p + 1);
  if (tenant_len == 0 || tenant_len > kMaxTenantBytes ||
      len < 1 + 2 + tenant_len + 8 + 4) {
    return DecodeError::kBadPayload;
  }
  std::string tenant(reinterpret_cast<const char*>(p + 3), tenant_len);
  *claimed = tenant;
  if (kind != static_cast<std::uint8_t>(FrameKind::kData) &&
      kind != static_cast<std::uint8_t>(FrameKind::kDrain)) {
    return DecodeError::kBadPayload;
  }
  const unsigned char* cursor = p + 3 + tenant_len;
  const std::uint64_t seq = get_u64(cursor);
  cursor += 8;
  const std::size_t sample_count = get_u32(cursor);
  cursor += 4;
  if (sample_count > kMaxSamples) return DecodeError::kBadPayload;
  // The declared lengths must tile the payload exactly: a frame whose
  // sample count disagrees with its length prefix is corrupt even when
  // the CRC (computed by the corrupter) checks out.
  const std::size_t expected = 1 + 2 + tenant_len + 8 + 4 + sample_count * 8;
  if (expected != len) return DecodeError::kBadPayload;
  out->kind = static_cast<FrameKind>(kind);
  out->tenant = std::move(tenant);
  out->seq = seq;
  out->samples.clear();
  out->samples.reserve(sample_count);
  for (std::size_t i = 0; i < sample_count; ++i) {
    out->samples.push_back(
        std::bit_cast<double>(get_u64(cursor + i * 8)));
  }
  return DecodeError::kNone;
}

}  // namespace

const char* to_string(DecodeError error) {
  switch (error) {
    case DecodeError::kNone:
      return "none";
    case DecodeError::kBadMagic:
      return "bad_magic";
    case DecodeError::kOversized:
      return "oversized";
    case DecodeError::kBadCrc:
      return "bad_crc";
    case DecodeError::kBadPayload:
      return "bad_payload";
  }
  return "unknown";
}

std::string encode(const Frame& frame) {
  if (frame.tenant.empty() || frame.tenant.size() > kMaxTenantBytes ||
      frame.samples.size() > kMaxSamples) {
    return {};
  }
  std::string payload;
  payload.reserve(1 + 2 + frame.tenant.size() + 8 + 4 +
                  frame.samples.size() * 8);
  payload.push_back(static_cast<char>(frame.kind));
  put_u16(payload, static_cast<std::uint16_t>(frame.tenant.size()));
  payload += frame.tenant;
  put_u64(payload, frame.seq);
  put_u32(payload, static_cast<std::uint32_t>(frame.samples.size()));
  for (const double sample : frame.samples) {
    put_u64(payload, std::bit_cast<std::uint64_t>(sample));
  }

  std::string out;
  out.reserve(kHeaderBytes + payload.size() + kTrailerBytes);
  out.append(reinterpret_cast<const char*>(kMagic), sizeof(kMagic));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out += payload;
  put_u32(out, io::crc32(payload));
  return out;
}

void Decoder::feed(const void* data, std::size_t len) {
  buffer_.append(static_cast<const char*>(data), len);
  // Compact once the dead prefix dominates, so long-lived connections
  // don't accrete every byte they ever received.
  if (cursor_ > 4096 && cursor_ > buffer_.size() / 2) {
    buffer_.erase(0, cursor_);
    cursor_ = 0;
  }
}

void Decoder::consume(std::size_t n) {
  cursor_ += n;
  stats_.bytes_consumed += n;
}

std::size_t Decoder::resync() {
  // Skip at least one byte, then stop at the next full magic.  A partial
  // magic at the buffer tail is kept: the rest may still arrive.
  const std::size_t start = cursor_;
  std::size_t pos = cursor_ + 1;
  while (pos < buffer_.size()) {
    const std::size_t avail = buffer_.size() - pos;
    const std::size_t window = avail < sizeof(kMagic) ? avail : sizeof(kMagic);
    if (std::memcmp(buffer_.data() + pos, kMagic, window) == 0) break;
    ++pos;
  }
  const std::size_t skipped = pos - start;
  consume(skipped);
  stats_.bytes_skipped += skipped;
  return skipped;
}

std::optional<Decoder::Event> Decoder::next() {
  for (;;) {
    const std::size_t avail = buffer_.size() - cursor_;
    if (avail < kHeaderBytes) {
      // A buffered prefix that already disagrees with the magic is
      // garbage now, not a frame waiting for more bytes.
      if (avail > 0 &&
          std::memcmp(buffer_.data() + cursor_, kMagic,
                      avail < sizeof(kMagic) ? avail : sizeof(kMagic)) != 0) {
        ++stats_.resyncs;
        ++stats_.errors;
        resync();
        Event ev;
        ev.error = DecodeError::kBadMagic;
        return ev;
      }
      return std::nullopt;
    }
    const auto* head =
        reinterpret_cast<const unsigned char*>(buffer_.data() + cursor_);
    if (std::memcmp(head, kMagic, sizeof(kMagic)) != 0) {
      ++stats_.resyncs;
      ++stats_.errors;
      resync();
      Event ev;
      ev.error = DecodeError::kBadMagic;
      return ev;
    }
    const std::size_t payload_len = get_u32(head + 4);
    if (payload_len > kMaxPayloadBytes) {
      // A hostile length prefix must not make us wait for (or buffer)
      // gigabytes; drop the magic and rescan.
      ++stats_.errors;
      ++stats_.resyncs;
      resync();
      Event ev;
      ev.error = DecodeError::kOversized;
      return ev;
    }
    const std::size_t total = kHeaderBytes + payload_len + kTrailerBytes;
    if (avail < total) return std::nullopt;  // incomplete: wait for bytes

    const unsigned char* payload = head + kHeaderBytes;
    const std::uint32_t stored_crc = get_u32(payload + payload_len);
    Event ev;
    if (io::crc32(payload, payload_len) != stored_crc) {
      ev.error = DecodeError::kBadCrc;
      // Best-effort attribution: a bit flip in the samples leaves the
      // tenant field intact often enough to be worth reporting.
      Frame scratch;
      std::string claimed;
      parse_payload(payload, payload_len, &scratch, &claimed);
      ev.claimed_tenant = std::move(claimed);
      ++stats_.errors;
      consume(total);
      return ev;
    }
    Frame frame;
    std::string claimed;
    const DecodeError err = parse_payload(payload, payload_len, &frame,
                                          &claimed);
    consume(total);
    if (err != DecodeError::kNone) {
      ev.error = err;
      ev.claimed_tenant = std::move(claimed);
      ++stats_.errors;
      return ev;
    }
    ++stats_.frames_decoded;
    ev.frame = std::move(frame);
    ev.claimed_tenant = ev.frame->tenant;
    return ev;
  }
}

}  // namespace fleet::wire
