#include "fleet/ingest_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "fleet/fleet_service.hpp"
#include "fleet/wire.hpp"

namespace fleet {

IngestServer::IngestServer(FleetService* service, IngestServerConfig config)
    : service_(service), config_(config) {
  if (config_.max_connections == 0) config_.max_connections = 1;
  if (config_.read_timeout_ms < 100) config_.read_timeout_ms = 100;
}

IngestServer::~IngestServer() { stop(); }

bool IngestServer::start(std::string* error) {
  if (running()) {
    if (error != nullptr) *error = "ingest server already running";
    return false;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + std::strerror(errno);
    }
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) {
      *error = std::string("bind 127.0.0.1:") + std::to_string(config_.port) +
               ": " + std::strerror(errno);
    }
    ::close(fd);
    return false;
  }
  if (::listen(fd, 16) != 0) {
    if (error != nullptr) {
      *error = std::string("listen: ") + std::strerror(errno);
    }
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = config_.port;
  }
  stop_.store(false, std::memory_order_relaxed);
  fd_.store(fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void IngestServer::stop() {
  stop_.store(true, std::memory_order_relaxed);
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections.swap(connections_);
  }
  for (auto& conn : connections) {
    // Shutting the socket unblocks a handler parked in recv().
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& conn : connections) {
    if (conn->worker.joinable()) conn->worker.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
  port_ = 0;
}

IngestServerStats IngestServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void IngestServer::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    Connection& conn = **it;
    if (conn.done.load(std::memory_order_acquire)) {
      if (conn.worker.joinable()) conn.worker.join();
      if (conn.fd >= 0) ::close(conn.fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void IngestServer::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) break;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;
    if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) break;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) continue;

    std::lock_guard<std::mutex> lock(mu_);
    reap_finished_locked();
    if (connections_.size() >= config_.max_connections) {
      ++stats_.connections_refused;
      ::close(client);
      continue;
    }
    ++stats_.connections_accepted;
    auto conn = std::make_unique<Connection>();
    conn->fd = client;
    Connection* raw = conn.get();
    conn->worker = std::thread([this, raw] {
      serve_connection(raw->fd);
      raw->done.store(true, std::memory_order_release);
    });
    connections_.push_back(std::move(conn));
  }
}

void IngestServer::serve_connection(int client_fd) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(config_.read_timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((config_.read_timeout_ms % 1000) * 1000);
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  wire::Decoder decoder;
  char buf[16384];
  std::uint64_t bytes = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      // Read deadline: keep waiting unless we are shutting down — an
      // idle uplink is not an error, it is a truck parked overnight.
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;
    }
    bytes += static_cast<std::uint64_t>(n);
    decoder.feed(buf, static_cast<std::size_t>(n));
    while (auto event = decoder.next()) {
      service_->handle_wire_event(*event);
    }
  }
  // Whatever is still buffered is a torn tail; the decoder already
  // counted everything decodable.
  const wire::Decoder::Stats& ds = decoder.stats();
  std::lock_guard<std::mutex> lock(mu_);
  stats_.bytes_received += bytes;
  stats_.frames_decoded += ds.frames_decoded;
  stats_.decode_errors += ds.errors;
  stats_.resyncs += ds.resyncs;
}

}  // namespace fleet
