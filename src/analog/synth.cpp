#include "analog/synth.hpp"

#include <cmath>
#include <complex>
#include <stdexcept>
#include <vector>

#include "analog/two_tap.hpp"

namespace analog {
namespace {

/// One constant-target interval of the switched system.
struct Segment {
  double start_s = 0.0;   // transition instant
  double target_v = 0.0;  // level the output settles toward
  bool to_dominant = false;
};

/// Analytic state of the second-order response within one segment:
///   v(t) = target + Re(w0 * exp(pole * (t - start))).
struct ResponseState {
  std::complex<double> w0;    // complex deviation amplitude at t = start
  std::complex<double> pole;  // -alpha + i*omega_d
  double target = 0.0;
  double start_s = 0.0;

  double value_at(double t) const {
    return target + (w0 * std::exp(pole * (t - start_s))).real();
  }
  double slope_at(double t) const {
    return (w0 * pole * std::exp(pole * (t - start_s))).real();
  }
};

std::complex<double> pole_of(const EdgeDynamics& dyn) {
  const double wn = 2.0 * M_PI * dyn.natural_freq_hz;
  const double zeta = dyn.damping;
  const double alpha = zeta * wn;
  const double wd = wn * std::sqrt(std::max(1e-6, 1.0 - zeta * zeta));
  return {-alpha, wd};
}

/// Starts a new segment given the output value/slope at the switch time.
ResponseState enter_segment(const Segment& seg, const EdgeDynamics& dyn,
                            double v_now, double vdot_now) {
  ResponseState st;
  st.pole = pole_of(dyn);
  st.target = seg.target_v;
  st.start_s = seg.start_s;
  const double d0 = v_now - seg.target_v;
  const double alpha = -st.pole.real();
  const double wd = st.pole.imag();
  // Match v(start) = v_now and v'(start) = vdot_now:
  //   Re(w0) = d0, Re(w0 * pole) = vdot_now.
  st.w0 = {d0, -(alpha * d0 + vdot_now) / wd};
  return st;
}

void validate(const canbus::BitVector& wire_bits, const SynthOptions& opts) {
  if (wire_bits.empty()) {
    throw std::invalid_argument("synthesize_frame_voltage: empty bit vector");
  }
  if (opts.bitrate <= units::BitRateBps{0.0} ||
      opts.sample_rate <= units::SampleRateHz{0.0}) {
    throw std::invalid_argument("synthesize_frame_voltage: rates must be > 0");
  }
}

/// Builds the transmitted-waveform segment list: lead-in recessive, then
/// one segment per run of equal bits, with per-transition transceiver
/// jitter.  Returns the segments and the number of synthesized bits.
std::vector<Segment> build_segments(const canbus::BitVector& wire_bits,
                                    const EcuSignature& sig,
                                    const SynthOptions& opts, double phase,
                                    std::size_t nbits, stats::Rng& rng) {
  const double bit_t = units::period(opts.bitrate).value();
  std::vector<Segment> segments;
  segments.push_back(Segment{0.0, sig.recessive.value(), false});
  const double sof_time = opts.lead_in_bits * bit_t + phase;
  bool prev = true;  // bus idles recessive
  for (std::size_t i = 0; i < nbits; ++i) {
    const bool bit = wire_bits[i];
    if (bit == prev) continue;
    double t = sof_time + static_cast<double>(i) * bit_t;
    if (sig.edge_jitter > units::Seconds{0.0}) {
      t += rng.gaussian(0.0, sig.edge_jitter.value());
    }
    segments.push_back(Segment{
        t, bit ? sig.recessive.value() : sig.dominant.value(),
        /*to_dominant=*/!bit});
    prev = bit;
  }
  return segments;
}

/// Renders one tap's view of the segment list: the waveform shifted by
/// `arrival_delay_s`, scaled by `gain`, with independent measurement
/// noise.
dsp::Trace render(const std::vector<Segment>& segments,
                  const EcuSignature& sig, const SynthOptions& opts,
                  std::size_t nsamples, double arrival_delay_s, double gain,
                  stats::Rng& rng) {
  const double dt = units::period(opts.sample_rate).value();
  dsp::Trace out(nsamples);
  ResponseState st =
      enter_segment(segments.front(), sig.release, sig.recessive.value(), 0.0);
  std::size_t next_seg = 1;

  // Per-sample recurrence within a segment: z tracks
  // w0 * exp(pole * (t_k - start)) on the sample grid, advanced by a
  // constant complex factor per sample.
  std::complex<double> z = st.w0;
  std::complex<double> step = std::exp(st.pole * dt);
  bool z_fresh = true;  // z refers to the current sample time already

  for (std::size_t k = 0; k < nsamples; ++k) {
    // Time in the transmitter's frame: the tap sees everything late.
    const double t = static_cast<double>(k) * dt - arrival_delay_s;
    bool switched = false;
    while (next_seg < segments.size() && segments[next_seg].start_s <= t) {
      const Segment& seg = segments[next_seg];
      const double v_now = st.value_at(seg.start_s);
      const double vdot_now = st.slope_at(seg.start_s);
      st = enter_segment(seg, seg.to_dominant ? sig.drive : sig.release,
                         v_now, vdot_now);
      switched = true;
      ++next_seg;
    }
    if (switched) {
      // Align the recurrence to this (sub-sample-offset) segment start.
      z = st.w0 * std::exp(st.pole * (t - st.start_s));
      step = std::exp(st.pole * dt);
      z_fresh = true;
    }
    if (!z_fresh) z *= step;
    z_fresh = false;
    out[k] = gain * (st.target + z.real()) +
             rng.gaussian(0.0, sig.noise_sigma.value());
  }
  return out;
}

}  // namespace

dsp::Trace synthesize_frame_voltage(const canbus::BitVector& wire_bits,
                                    const EcuSignature& sig_nominal,
                                    const Environment& env,
                                    const SynthOptions& opts,
                                    stats::Rng& rng) {
  validate(wire_bits, opts);
  const EcuSignature sig = sig_nominal.under(env);
  const double bit_t = units::period(opts.bitrate).value();
  const double dt = units::period(opts.sample_rate).value();

  const std::size_t nbits = (opts.max_bits != 0)
                                ? std::min(opts.max_bits, wire_bits.size())
                                : wire_bits.size();
  // Asynchronous sampling: shift all bit boundaries by a random fraction
  // of one sample period.
  const double phase = opts.sampling_phase_jitter ? rng.uniform() * dt : 0.0;
  const std::vector<Segment> segments =
      build_segments(wire_bits, sig, opts, phase, nbits, rng);

  const double total_t =
      opts.lead_in_bits * bit_t + phase +
      (static_cast<double>(nbits) + opts.lead_out_bits) * bit_t;
  const std::size_t nsamples = static_cast<std::size_t>(total_t / dt);
  return render(segments, sig, opts, nsamples, /*arrival_delay_s=*/0.0,
                /*gain=*/1.0, rng);
}

std::pair<dsp::Trace, dsp::Trace> synthesize_two_tap_voltage(
    const canbus::BitVector& wire_bits, const EcuSignature& sig_nominal,
    const Environment& env, const SynthOptions& opts, const TwoTapBus& bus,
    double position_m, stats::Rng& rng) {
  validate(wire_bits, opts);
  if (position_m < 0.0 || position_m > bus.length_m) {
    throw std::invalid_argument(
        "synthesize_two_tap_voltage: position outside the bus");
  }
  const EcuSignature sig = sig_nominal.under(env);
  const double bit_t = units::period(opts.bitrate).value();
  const double dt = units::period(opts.sample_rate).value();

  const std::size_t nbits = (opts.max_bits != 0)
                                ? std::min(opts.max_bits, wire_bits.size())
                                : wire_bits.size();
  const double phase = opts.sampling_phase_jitter ? rng.uniform() * dt : 0.0;
  // One transmitted waveform (shared bit timing and edge jitter)...
  const std::vector<Segment> segments =
      build_segments(wire_bits, sig, opts, phase, nbits, rng);

  const double total_t =
      opts.lead_in_bits * bit_t + phase +
      (static_cast<double>(nbits) + opts.lead_out_bits) * bit_t;
  const std::size_t nsamples = static_cast<std::size_t>(total_t / dt);

  // ...seen by the two taps with position-dependent delay and attenuation
  // and independent measurement noise.
  const double delay_a = position_m / bus.propagation_mps;
  const double delay_b = (bus.length_m - position_m) / bus.propagation_mps;
  const double gain_a = 1.0 - bus.attenuation_per_m * position_m;
  const double gain_b =
      1.0 - bus.attenuation_per_m * (bus.length_m - position_m);

  dsp::Trace tap_a =
      render(segments, sig, opts, nsamples, delay_a, gain_a, rng);
  dsp::Trace tap_b =
      render(segments, sig, opts, nsamples, delay_b, gain_b, rng);
  return {std::move(tap_a), std::move(tap_b)};
}

}  // namespace analog
