#include "analog/environment.hpp"

namespace analog {

Environment accessory_mode(double temperature_c) {
  return Environment{temperature_c, 12.61};
}

Environment engine_running(double temperature_c) {
  return Environment{temperature_c, 13.60};
}

Environment accessory_under_load(double sag_v, double temperature_c) {
  Environment env = accessory_mode(temperature_c);
  env.battery_v -= sag_v;
  return env;
}

}  // namespace analog
