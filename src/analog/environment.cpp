#include "analog/environment.hpp"

namespace analog {

Environment accessory_mode(units::Celsius temperature) {
  return Environment{temperature, units::Volts{12.61}};
}

Environment engine_running(units::Celsius temperature) {
  return Environment{temperature, units::Volts{13.60}};
}

Environment accessory_under_load(units::Volts sag, units::Celsius temperature) {
  Environment env = accessory_mode(temperature);
  env.battery -= sag;
  return env;
}

}  // namespace analog
