// Analog waveform synthesis: turns an on-wire bit sequence into the
// differential voltage trace a digitizer tapping the bus would capture.
//
// The transmitter is modelled as a switched second-order linear system
// (see signature.hpp).  Within a constant-target segment the response is
// evaluated analytically through a complex exponential recurrence, so the
// synthesis is exact regardless of the sampling rate — important because
// the paper sweeps sampling rates from 20 MS/s down to 2.5 MS/s.
//
// Sampling is asynchronous to the bit clock: every frame receives a random
// sub-sample phase offset plus per-transition transceiver jitter.  This is
// what produces the high variance at edge sample indices that the paper
// observes in Fig 4.4 and that motivates the Mahalanobis metric.
#pragma once

#include "analog/environment.hpp"
#include "analog/signature.hpp"
#include "canbus/crc15.hpp"
#include "core/units.hpp"
#include "dsp/trace.hpp"
#include "stats/rng.hpp"

namespace analog {

/// Synthesis controls.
struct SynthOptions {
  /// Both test vehicles use 250 kb/s J1939.
  units::BitRateBps bitrate{250.0e3};
  units::SampleRateHz sample_rate{20.0e6};
  /// Idle (recessive) bit times before SOF so SOF detection has context.
  double lead_in_bits = 2.0;
  /// Idle bit times appended after the last synthesized bit.
  double lead_out_bits = 1.0;
  /// If nonzero, only the first `max_bits` wire bits are synthesized —
  /// vProfile only reads the start of a message (Section 1.3), so
  /// truncated synthesis keeps large experiments fast.
  std::size_t max_bits = 0;
  /// Random sub-sample phase offset per frame (asynchronous sampling).
  bool sampling_phase_jitter = true;
};

/// Synthesizes the differential bus voltage (volts) for `wire_bits` sent by
/// an ECU with signature `sig` under environment `env`.  Bits use the CAN
/// convention: false = dominant, true = recessive.  Throws
/// std::invalid_argument on an empty bit vector or non-positive rates.
dsp::Trace synthesize_frame_voltage(const canbus::BitVector& wire_bits,
                                    const EcuSignature& sig,
                                    const Environment& env,
                                    const SynthOptions& opts,
                                    stats::Rng& rng);

}  // namespace analog
