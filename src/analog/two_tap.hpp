// Two-tap bus capture: the physical setup of Moreno & Fischmeister's
// propagation-delay locator (Section 1.2.2), which attaches two
// differential probes to opposite ends of the bus and uses the arrival
// time difference to locate the transmitting node.
//
// Signals propagate along the twisted pair at roughly two thirds of the
// speed of light (~5 ns/m).  A node at position x on a bus of length L
// reaches tap A (at 0) after x/v and tap B (at L) after (L-x)/v; the
// difference (2x-L)/v identifies x.  Both taps see the *same* transmitted
// waveform (including the transmitter's edge jitter) with independent
// measurement noise.
#pragma once

#include <utility>

#include "analog/environment.hpp"
#include "analog/signature.hpp"
#include "analog/synth.hpp"
#include "canbus/crc15.hpp"
#include "dsp/trace.hpp"
#include "stats/rng.hpp"

namespace analog {

/// Physical bus geometry for two-tap capture.
struct TwoTapBus {
  double length_m = 10.0;
  /// Signal propagation speed on the pair (vf ~ 0.66 c).
  double propagation_mps = 2.0e8;
  /// Amplitude loss per metre of cable between node and tap.
  double attenuation_per_m = 0.004;

  /// Arrival-time difference tap A minus tap B for a node at `position_m`.
  double delay_difference_s(double position_m) const {
    return (2.0 * position_m - length_m) / propagation_mps;
  }
};

/// Synthesizes the two tap captures of one frame sent by a node at
/// `position_m` (metres from tap A).  The transmitted waveform — bit
/// timing, edge jitter, sampling phase — is shared; only arrival delay,
/// attenuation, and measurement noise differ per tap.  Throws
/// std::invalid_argument when position_m is outside [0, length_m] or the
/// options are invalid.
std::pair<dsp::Trace, dsp::Trace> synthesize_two_tap_voltage(
    const canbus::BitVector& wire_bits, const EcuSignature& sig,
    const Environment& env, const SynthOptions& opts, const TwoTapBus& bus,
    double position_m, stats::Rng& rng);

}  // namespace analog
