#include "analog/signature.hpp"

#include <algorithm>
#include <cmath>

namespace analog {

EcuSignature EcuSignature::under(const Environment& env) const {
  // The ECU's own temperature follows the ambient excursion scaled by its
  // mounting-dependent coupling.
  const double dt =
      temperature_coupling * (env.temperature - kReferenceTemperature).value();
  const double dv = (env.battery - kReferenceBattery).value();

  EcuSignature eff = *this;
  eff.dominant +=
      units::Volts{dominant_temp_coeff_v_per_c * dt + dominant_vbat_coeff * dv};
  const double freq_scale = std::max(0.2, 1.0 + freq_temp_coeff_per_c * dt);
  eff.drive.natural_freq_hz *= freq_scale;
  eff.release.natural_freq_hz *= freq_scale;
  return eff;
}

double EcuSignature::parameter_distance(const EcuSignature& other) const {
  // Normalized parameter deltas; weights are arbitrary but consistent.
  const double dl = (dominant - other.dominant).value() / 0.1;
  const double dr = (recessive - other.recessive).value() / 0.02;
  const double df = (drive.natural_freq_hz - other.drive.natural_freq_hz) /
                    (0.2 * drive.natural_freq_hz);
  const double dz = (drive.damping - other.drive.damping) / 0.1;
  const double dff =
      (release.natural_freq_hz - other.release.natural_freq_hz) /
      (0.2 * release.natural_freq_hz);
  const double dzz = (release.damping - other.release.damping) / 0.1;
  return std::sqrt(dl * dl + dr * dr + df * df + dz * dz + dff * dff +
                   dzz * dzz);
}

namespace {

double clamp_damping(double z) { return std::clamp(z, 0.3, 0.97); }

}  // namespace

EcuSignature perturb_signature(const EcuSignature& nominal,
                               const SignatureSpread& spread,
                               stats::Rng& rng) {
  EcuSignature s = nominal;
  s.dominant += units::Volts{
      rng.uniform(-spread.dominant.value(), spread.dominant.value())};
  s.recessive += units::Volts{
      rng.uniform(-spread.recessive.value(), spread.recessive.value())};
  s.drive.natural_freq_hz *=
      1.0 + rng.uniform(-spread.freq_frac, spread.freq_frac);
  s.drive.natural_freq_hz = std::max(1.0e5, s.drive.natural_freq_hz);
  s.drive.damping =
      clamp_damping(s.drive.damping + rng.uniform(-spread.damping,
                                                  spread.damping));
  s.release.natural_freq_hz *=
      1.0 + rng.uniform(-spread.freq_frac, spread.freq_frac);
  s.release.natural_freq_hz = std::max(1.0e5, s.release.natural_freq_hz);
  s.release.damping =
      clamp_damping(s.release.damping + rng.uniform(-spread.damping,
                                                    spread.damping));
  s.noise_sigma *= 1.0 + rng.uniform(-spread.noise_frac, spread.noise_frac);
  s.noise_sigma = std::max(units::Volts{1.0e-4}, s.noise_sigma);
  s.dominant_temp_coeff_v_per_c *=
      1.0 + rng.uniform(-spread.temp_coeff_frac, spread.temp_coeff_frac);
  s.dominant_vbat_coeff *=
      1.0 + rng.uniform(-spread.vbat_coeff_frac, spread.vbat_coeff_frac);
  return s;
}

}  // namespace analog
