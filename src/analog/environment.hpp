// Operating environment of the vehicle electrical system.
//
// Section 4.4 of the paper shows that ECU temperature and battery voltage
// shift the CAN bus voltage; this struct carries those two quantities into
// the waveform synthesizer.  Each ECU couples to ambient temperature with
// its own factor (the paper theorizes that "the temperature of some ECUs
// did not rise much throughout the experiments").
//
// Both quantities are unit-safe strong types (core/units.hpp): a
// temperature can never be assigned into a voltage slot or vice versa.
#pragma once

#include "core/units.hpp"

namespace analog {

/// Environment at the moment a frame is transmitted.
struct Environment {
  /// Ambient / engine-bay temperature.
  units::Celsius temperature{20.0};
  /// Battery (supply) voltage.  Idling with the alternator running sits
  /// near 13.6 V; accessory mode near 12.6 V.
  units::Volts battery{12.6};

  static Environment reference() { return Environment{}; }
};

/// Reference conditions the signature parameters are specified at.
inline constexpr units::Celsius kReferenceTemperature{20.0};
inline constexpr units::Volts kReferenceBattery{12.6};

/// Battery voltage presets mirroring the paper's measurements (§4.4.2).
Environment accessory_mode(units::Celsius temperature = units::Celsius{28.4});
Environment engine_running(units::Celsius temperature = units::Celsius{20.0});
/// Accessory mode under a heavy electrical load (lights + A/C): the
/// battery sags by `sag` from the accessory-mode level.
Environment accessory_under_load(units::Volts sag,
                                 units::Celsius temperature = units::Celsius{
                                     28.4});

}  // namespace analog
