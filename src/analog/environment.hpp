// Operating environment of the vehicle electrical system.
//
// Section 4.4 of the paper shows that ECU temperature and battery voltage
// shift the CAN bus voltage; this struct carries those two quantities into
// the waveform synthesizer.  Each ECU couples to ambient temperature with
// its own factor (the paper theorizes that "the temperature of some ECUs
// did not rise much throughout the experiments").
#pragma once

namespace analog {

/// Environment at the moment a frame is transmitted.
struct Environment {
  /// Ambient / engine-bay temperature in degrees Celsius.
  double temperature_c = 20.0;
  /// Battery (supply) voltage in volts.  Idling with the alternator
  /// running sits near 13.6 V; accessory mode near 12.6 V.
  double battery_v = 12.6;

  static Environment reference() { return Environment{}; }
};

/// Reference conditions the signature parameters are specified at.
inline constexpr double kReferenceTemperatureC = 20.0;
inline constexpr double kReferenceBatteryV = 12.6;

/// Battery voltage presets mirroring the paper's measurements (§4.4.2).
Environment accessory_mode(double temperature_c = 28.4);
Environment engine_running(double temperature_c = 20.0);
/// Accessory mode under a heavy electrical load (lights + A/C): the
/// battery sags by `sag_v` from the accessory-mode level.
Environment accessory_under_load(double sag_v, double temperature_c = 28.4);

}  // namespace analog
