// Per-ECU analog transmit signature.
//
// Manufacturing variation gives every CAN transceiver slightly different
// output levels, edge dynamics and ringing (Section 2.2.1, "Immutable ECU
// Property").  We model the differential bus voltage a transmitting ECU
// produces as a switched second-order system: when the driver turns on
// (dominant) the output follows a drive response, when it releases the bus
// (recessive) the termination network pulls it back with a different
// response.  Underdamped dynamics produce the overshoot and ringing seen
// in the paper's Fig 2.5.
//
// Voltage levels and the transceiver's timing jitter are unit-safe strong
// types (core/units.hpp); the environmental coefficients stay raw doubles
// because they are mixed-dimension slopes (volts per degree, relative
// fraction per degree) the type system has no single unit for.
#pragma once

#include <cstdint>

#include "analog/environment.hpp"
#include "core/units.hpp"
#include "stats/rng.hpp"

namespace analog {

/// Second-order response parameters of one switching direction.
struct EdgeDynamics {
  double natural_freq_hz = 2.0e6;  // omega_n / (2 pi)
  double damping = 0.7;            // zeta, must stay in (0, 1)
};

/// Full electrical signature of one ECU's transmitter.
struct EcuSignature {
  /// Differential dominant level (CAN_H - CAN_L) at reference conditions.
  units::Volts dominant{2.0};
  /// Differential recessive level; ideally 0 V, small per-node offset.
  units::Volts recessive{0.0};
  EdgeDynamics drive;    // recessive -> dominant transitions
  EdgeDynamics release;  // dominant -> recessive transitions
  /// Gaussian measurement/bus noise at the sampling point (RMS).
  units::Volts noise_sigma{0.008};
  /// Per-transition timing jitter of the transceiver (RMS).
  units::Seconds edge_jitter{3.0e-9};

  // Environmental coefficients (deviations from reference conditions).
  /// Dominant-level shift per degree Celsius of *ECU* temperature.
  double dominant_temp_coeff_v_per_c = -0.0008;
  /// Relative natural-frequency change per degree Celsius.
  double freq_temp_coeff_per_c = -0.001;
  /// Dominant-level shift per volt of battery deviation.
  double dominant_vbat_coeff = 0.012;
  /// Fraction of the ambient temperature excursion this ECU experiences
  /// (1 = mounted on the engine block like the ECM, ~0.2 = cabin module).
  double temperature_coupling = 0.5;

  /// Effective signature under the given environment: levels and dynamics
  /// shifted by the coefficients above.  Noise and jitter are unchanged.
  EcuSignature under(const Environment& env) const;

  /// Euclidean-style crude dissimilarity between two signatures in
  /// parameter space; used only by tests and factories to reason about
  /// spread (detection itself never sees these parameters).
  double parameter_distance(const EcuSignature& other) const;
};

/// Controls how far apart randomly generated signatures are.
struct SignatureSpread {
  units::Volts dominant{0.08};    // +- range around the nominal level
  units::Volts recessive{0.01};
  double freq_frac = 0.25;        // relative spread of natural frequencies
  double damping = 0.1;
  double noise_frac = 0.3;
  double temp_coeff_frac = 0.6;
  double vbat_coeff_frac = 0.4;
};

/// Draws a signature around `nominal` with the given spread.  All sampled
/// parameters are clamped to physically sane ranges (damping in
/// [0.3, 0.97], positive frequencies and noise).
EcuSignature perturb_signature(const EcuSignature& nominal,
                               const SignatureSpread& spread,
                               stats::Rng& rng);

}  // namespace analog
