// Analog fault injection for captured voltage traces.
//
// A deployed voltage tap lives in a hostile place: connectors corrode,
// grounds drift, ignition coils spray EMI, ADC front ends clip and drop
// samples, and an adversary can corrupt the signal on purpose (Sagong et
// al., "Mitigating Vulnerabilities of Voltage-based Intrusion Detection
// Systems in CAN", 2019).  This layer models the analog failure modes as
// composable transforms over dsp::Trace so every capture stream — clean,
// hijack, foreign, masquerade — can be replayed through any fault
// profile.  All randomness comes from one seeded Rng, so a profile + seed
// fully determines the corrupted stream.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/units.hpp"
#include "dsp/trace.hpp"
#include "stats/rng.hpp"

namespace obs {
class Counter;
class MetricsRegistry;
}  // namespace obs

namespace faults {

/// The analog failure modes the injector can apply.
enum class FaultKind {
  kClipping,    // front-end saturates: codes clamp at a reduced rail
  kDropout,     // sample run lost (loose connector / DMA underrun), reads 0
  kDcShift,     // ground/offset shift of the whole trace
  kEmiBurst,    // additive burst noise (ignition / motor EMI)
  kClockDrift,  // sampling clock runs fast/slow, stretching the trace
  kTruncation,  // capture window ends before the message does
  kSlowDrift,   // cumulative ramping offset (thermal creep / slow poisoning)
  // IDS-aware attack transforms (Sagong et al.): shaped on purpose to
  // search for detector blind spots, not to model accidental damage.
  // They are appended after the environmental kinds so existing profiles
  // draw bit-identical random streams (the injector only consumes RNG
  // for faults a profile actually configures).
  kOvercurrent,      // second driver: dominant-level gain + offset shaping
  kCorruptionBurst,  // periodic additive voltage-corruption burst
  kDriftMasquerade,  // duty-cycled cumulative masquerade ramp
};

inline constexpr std::size_t kNumFaultKinds = 10;

const char* to_string(FaultKind kind);

/// Per-kind parameters.  Every fault fires independently per trace with
/// its own probability; a probability of 0 disables it.

/// Clamp codes above `level_fraction` of full scale (and below
/// `(1 - level_fraction)` of full scale when `symmetric`).
struct ClippingFault {
  double probability = 0.0;
  double level_fraction = 0.8;
  bool symmetric = false;
};

/// Zero out a run of `min_len`..`max_len` samples at a random position.
struct DropoutFault {
  double probability = 0.0;
  std::size_t min_len = 8;
  std::size_t max_len = 64;
};

/// Add a constant offset drawn uniformly from [min_shift, max_shift]
/// (ADC codes); the result is clamped to the ADC range like a real
/// front end would.
struct DcShiftFault {
  double probability = 0.0;
  double min_shift = -2000.0;
  double max_shift = 2000.0;
};

/// Add Gaussian noise of `sigma` codes over a run of `min_len`..`max_len`
/// samples at a random position, clamped to the ADC range.
struct EmiBurstFault {
  double probability = 0.0;
  double sigma = 3000.0;
  std::size_t min_len = 16;
  std::size_t max_len = 200;
};

/// Resample the trace as if the sampling clock ran off-nominal by up to
/// `max_drift_ppm` parts per million (sign drawn at random).
struct ClockDriftFault {
  double probability = 0.0;
  double max_drift_ppm = 20000.0;
};

/// Keep only the first `min_keep`..1.0 fraction of the trace (uniform).
struct TruncationFault {
  double probability = 0.0;
  double min_keep = 0.25;
};

/// A slowly ramping offset: each firing advances the injector's cumulative
/// shift by `step` codes (saturating at ±`max_shift`) and applies it to the
/// trace.  Unlike DcShiftFault this is *stateful* — it models thermal /
/// ground creep and, crucially, the Sagong-style slow-poisoning adversary:
/// each individual step is small enough to pass the detector's margin, but
/// an ungated online updater that keeps folding the shifted frames walks
/// the stored profile toward the attacker's signature.
struct SlowDriftFault {
  double probability = 0.0;
  double step = 25.0;         // codes added to the cumulative shift per firing
  double max_shift = 3000.0;  // |cumulative shift| saturates here
};

/// Sagong-style overcurrent shaping: the attacker drives the bus on top
/// of the legitimate transmitter, boosting the dominant-level samples by
/// `gain` and offsetting the whole trace by `offset` codes.  Unlike the
/// environmental faults this transform is parameter-deterministic (no
/// RNG draw inside the transform) so an adversary search can evaluate a
/// parameter point reproducibly.
struct OvercurrentFault {
  double probability = 0.0;
  double gain = 0.25;              // extra drive on dominant-level samples
  double dominant_fraction = 0.6;  // samples >= this fraction of full scale
                                   // count as dominant
  double offset = 0.0;             // codes added to every sample
};

/// Sagong-style voltage-corruption burst: an additive sinusoid of
/// `amplitude` codes with period `period_samples`, applied only during the
/// first `duty` fraction of each period (phase in cycles shifts where the
/// corrupted windows land).  amplitude 0 is a bit-exact no-op.
struct CorruptionBurstFault {
  double probability = 0.0;
  double amplitude = 2000.0;
  double period_samples = 64.0;
  double phase = 0.0;  // cycles, [0, 1)
  double duty = 0.5;   // corrupted fraction of each period
};

/// Drift-exploiting slow masquerade: like kSlowDrift the injector keeps a
/// cumulative shift, but the ramp only advances on a `duty` fraction of
/// firings (deterministic Bresenham schedule, no RNG) — the adversary's
/// knob for staying under a drift sentinel's per-sample tolerance while
/// still reaching `max_shift` eventually.
struct DriftMasqueradeFault {
  double probability = 0.0;
  double ramp_rate = 25.0;    // codes added to the shift per advancing firing
  double max_shift = 1500.0;  // |cumulative shift| saturates here
  double duty = 1.0;          // fraction of firings that advance the ramp
};

/// A named, composable set of faults.  Faults are applied in the fixed
/// order of the FaultKind enum so a profile + seed is reproducible.
struct FaultProfile {
  std::string name = "clean";
  std::optional<ClippingFault> clipping;
  std::optional<DropoutFault> dropout;
  std::optional<DcShiftFault> dc_shift;
  std::optional<EmiBurstFault> emi_burst;
  std::optional<ClockDriftFault> clock_drift;
  std::optional<TruncationFault> truncation;
  std::optional<SlowDriftFault> slow_drift;
  std::optional<OvercurrentFault> overcurrent;
  std::optional<CorruptionBurstFault> corruption_burst;
  std::optional<DriftMasqueradeFault> drift_masquerade;

  /// True when no fault can ever fire.
  bool empty() const;
};

/// Canned profiles for the scenario matrix, the monitor tool and benches.
FaultProfile clean_profile();
/// Front end saturating at 70% full scale on most frames.
FaultProfile saturated_tap();
/// Loose connector: frequent dropouts plus a wandering ground offset.
FaultProfile flaky_connector();
/// Heavy ignition EMI bursts.
FaultProfile emi_storm();
/// Sampling clock off by up to 2% (drifting crystal).
FaultProfile drifting_clock();
/// Capture windows that frequently end mid-message.
FaultProfile truncating_tap();
/// Everything at once, at moderate rates — the worst-case soak profile.
FaultProfile harsh_environment();
/// Slow-poisoning ramp that always fires: every trace shifts a little
/// further than the last, staying under the margin per step.
FaultProfile slow_poison();

/// All canned profiles above, for grids and CLI lookups.
std::vector<FaultProfile> canned_profiles();
/// Profile by name, or std::nullopt for an unknown name.
std::optional<FaultProfile> profile_by_name(const std::string& name);

/// How often each fault actually fired.
struct FaultStats {
  std::array<std::uint64_t, kNumFaultKinds> applied{};
  std::uint64_t faulted_traces = 0;  // traces hit by at least one fault
  std::uint64_t total_traces = 0;

  std::uint64_t applied_total() const;
};

/// Applies a profile to traces, one at a time, deterministically.
///
/// `max_code` is the ADC full-scale code (results clamp to [0, max_code]
/// where the physical front end would).  Two injectors with equal
/// (profile, max_code, seed) produce identical outputs for identical
/// input sequences.
class FaultInjector {
 public:
  FaultInjector(FaultProfile profile, double max_code, units::Seed64 seed);
  FaultInjector(FaultProfile profile, double max_code, std::uint64_t seed)
      : FaultInjector(std::move(profile), max_code, units::Seed64{seed}) {}

  /// Returns the corrupted trace and updates the per-fault counters.
  dsp::Trace apply(const dsp::Trace& trace);

  const FaultProfile& profile() const { return profile_; }
  const FaultStats& stats() const { return stats_; }
  void reset_stats() { stats_ = FaultStats{}; }

  /// Current cumulative slow-drift offset in codes (0 until the slow-drift
  /// fault first fires).  Exposed so tests can assert the ramp's shape.
  double slow_drift_shift() const { return slow_drift_shift_; }

  /// Current cumulative drift-masquerade offset in codes (independent of
  /// the slow-drift state; the two ramps compose).
  double masquerade_shift() const { return masquerade_shift_; }

  /// Mirrors activations into `fault_activations_total{kind=...}` (plus
  /// `fault_traces_total`) on top of the local stats.  Null detaches.
  /// Injection itself stays bit-identical — the RNG never sees this.
  void bind_metrics(obs::MetricsRegistry* registry);

 private:
  FaultProfile profile_;
  double max_code_;
  stats::Rng rng_;
  FaultStats stats_;
  double slow_drift_shift_ = 0.0;
  double masquerade_shift_ = 0.0;
  std::uint64_t masquerade_ticks_ = 0;
  std::array<obs::Counter*, kNumFaultKinds> metric_applied_{};
  obs::Counter* metric_traces_ = nullptr;
};

/// The individual transforms, exposed for tests and custom pipelines.
/// Each draws its parameters from `rng` and never throws on any input
/// (including empty traces, which pass through unchanged).
dsp::Trace apply_clipping(const dsp::Trace& trace, const ClippingFault& f,
                          double max_code);
dsp::Trace apply_dropout(const dsp::Trace& trace, const DropoutFault& f,
                         stats::Rng& rng);
dsp::Trace apply_dc_shift(const dsp::Trace& trace, const DcShiftFault& f,
                          double max_code, stats::Rng& rng);
dsp::Trace apply_emi_burst(const dsp::Trace& trace, const EmiBurstFault& f,
                           double max_code, stats::Rng& rng);
dsp::Trace apply_clock_drift(const dsp::Trace& trace, const ClockDriftFault& f,
                             stats::Rng& rng);
dsp::Trace apply_truncation(const dsp::Trace& trace, const TruncationFault& f,
                            stats::Rng& rng);
/// Applies a caller-maintained cumulative shift (see SlowDriftFault); the
/// injector advances its own state before calling this.
dsp::Trace apply_slow_drift(const dsp::Trace& trace, double shift,
                            double max_code);
/// Parameter-deterministic overcurrent shaping (no RNG): gain 0 and
/// offset 0 return the input bit-exactly.
dsp::Trace apply_overcurrent(const dsp::Trace& trace,
                             const OvercurrentFault& f, double max_code);
/// Parameter-deterministic corruption burst (no RNG): amplitude 0 returns
/// the input bit-exactly.
dsp::Trace apply_corruption_burst(const dsp::Trace& trace,
                                  const CorruptionBurstFault& f,
                                  double max_code);
/// True when the `tick`-th firing (1-based) of a duty-cycled schedule
/// advances: the deterministic Bresenham spacing DriftMasqueradeFault and
/// the adversary harness share.  duty is clamped to [0, 1].
bool duty_cycle_fires(std::uint64_t tick, double duty);

}  // namespace faults
