#include "faults/fault.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"

namespace faults {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kClipping: return "clipping";
    case FaultKind::kDropout: return "dropout";
    case FaultKind::kDcShift: return "dc-shift";
    case FaultKind::kEmiBurst: return "emi-burst";
    case FaultKind::kClockDrift: return "clock-drift";
    case FaultKind::kTruncation: return "truncation";
    case FaultKind::kSlowDrift: return "slow-drift";
    case FaultKind::kOvercurrent: return "overcurrent";
    case FaultKind::kCorruptionBurst: return "corruption-burst";
    case FaultKind::kDriftMasquerade: return "drift-masquerade";
  }
  return "unknown";
}

bool FaultProfile::empty() const {
  const auto active = [](const auto& f) { return f && f->probability > 0.0; };
  return !(active(clipping) || active(dropout) || active(dc_shift) ||
           active(emi_burst) || active(clock_drift) || active(truncation) ||
           active(slow_drift) || active(overcurrent) ||
           active(corruption_burst) || active(drift_masquerade));
}

FaultProfile clean_profile() { return FaultProfile{}; }

FaultProfile saturated_tap() {
  FaultProfile p;
  p.name = "saturated-tap";
  p.clipping = ClippingFault{0.8, 0.7, false};
  return p;
}

FaultProfile flaky_connector() {
  FaultProfile p;
  p.name = "flaky-connector";
  p.dropout = DropoutFault{0.5, 8, 96};
  p.dc_shift = DcShiftFault{0.5, -1500.0, 1500.0};
  return p;
}

FaultProfile emi_storm() {
  FaultProfile p;
  p.name = "emi-storm";
  p.emi_burst = EmiBurstFault{0.7, 4000.0, 32, 400};
  return p;
}

FaultProfile drifting_clock() {
  FaultProfile p;
  p.name = "drifting-clock";
  p.clock_drift = ClockDriftFault{1.0, 20000.0};
  return p;
}

FaultProfile truncating_tap() {
  FaultProfile p;
  p.name = "truncating-tap";
  p.truncation = TruncationFault{0.4, 0.3};
  return p;
}

FaultProfile harsh_environment() {
  FaultProfile p;
  p.name = "harsh";
  p.clipping = ClippingFault{0.3, 0.75, false};
  p.dropout = DropoutFault{0.25, 8, 64};
  p.dc_shift = DcShiftFault{0.3, -1000.0, 1000.0};
  p.emi_burst = EmiBurstFault{0.3, 2500.0, 16, 200};
  p.clock_drift = ClockDriftFault{0.3, 10000.0};
  p.truncation = TruncationFault{0.15, 0.4};
  return p;
}

FaultProfile slow_poison() {
  FaultProfile p;
  p.name = "slow-poison";
  // Always fires; each step is ~0.06% of a 16-bit full scale — far inside
  // any sane margin — but the saturated shift is a full signature's worth.
  p.slow_drift = SlowDriftFault{1.0, 25.0, 3000.0};
  return p;
}

std::vector<FaultProfile> canned_profiles() {
  return {clean_profile(),   saturated_tap(),  flaky_connector(),
          emi_storm(),       drifting_clock(), truncating_tap(),
          harsh_environment(), slow_poison()};
}

std::optional<FaultProfile> profile_by_name(const std::string& name) {
  for (FaultProfile& p : canned_profiles()) {
    if (p.name == name) return std::move(p);
  }
  return std::nullopt;
}

std::uint64_t FaultStats::applied_total() const {
  std::uint64_t total = 0;
  for (std::uint64_t a : applied) total += a;
  return total;
}

namespace {

double clamp_code(double code, double max_code) {
  return std::clamp(code, 0.0, max_code);
}

/// Random window [start, start+len) inside a trace; len clamped to size.
std::pair<std::size_t, std::size_t> draw_window(std::size_t size,
                                                std::size_t min_len,
                                                std::size_t max_len,
                                                stats::Rng& rng) {
  const std::size_t lo = std::max<std::size_t>(1, std::min(min_len, size));
  const std::size_t hi = std::max(lo, std::min(max_len, size));
  const std::size_t len =
      lo + static_cast<std::size_t>(rng.below(hi - lo + 1));
  const std::size_t start =
      static_cast<std::size_t>(rng.below(size - len + 1));
  return {start, len};
}

}  // namespace

dsp::Trace apply_clipping(const dsp::Trace& trace, const ClippingFault& f,
                          double max_code) {
  const double high = f.level_fraction * max_code;
  const double low = f.symmetric ? (1.0 - f.level_fraction) * max_code : 0.0;
  dsp::Trace out = trace;
  for (double& c : out) c = std::clamp(c, low, high);
  return out;
}

dsp::Trace apply_dropout(const dsp::Trace& trace, const DropoutFault& f,
                         stats::Rng& rng) {
  if (trace.empty()) return trace;
  dsp::Trace out = trace;
  const auto [start, len] = draw_window(out.size(), f.min_len, f.max_len, rng);
  std::fill(out.begin() + static_cast<std::ptrdiff_t>(start),
            out.begin() + static_cast<std::ptrdiff_t>(start + len), 0.0);
  return out;
}

dsp::Trace apply_dc_shift(const dsp::Trace& trace, const DcShiftFault& f,
                          double max_code, stats::Rng& rng) {
  const double shift = rng.uniform(f.min_shift, f.max_shift);
  dsp::Trace out = trace;
  for (double& c : out) c = clamp_code(c + shift, max_code);
  return out;
}

dsp::Trace apply_emi_burst(const dsp::Trace& trace, const EmiBurstFault& f,
                           double max_code, stats::Rng& rng) {
  if (trace.empty()) return trace;
  dsp::Trace out = trace;
  const auto [start, len] = draw_window(out.size(), f.min_len, f.max_len, rng);
  for (std::size_t i = start; i < start + len; ++i) {
    out[i] = clamp_code(out[i] + rng.gaussian(0.0, f.sigma), max_code);
  }
  return out;
}

dsp::Trace apply_clock_drift(const dsp::Trace& trace, const ClockDriftFault& f,
                             stats::Rng& rng) {
  if (trace.size() < 2) return trace;
  // Effective sampling ratio: > 1 when the tap clock runs slow (reads the
  // message stretched), < 1 when fast.
  const double drift = rng.uniform(-f.max_drift_ppm, f.max_drift_ppm) * 1e-6;
  const double ratio = 1.0 + drift;
  const std::size_t out_len = std::max<std::size_t>(
      2, static_cast<std::size_t>(
             std::floor(static_cast<double>(trace.size() - 1) / ratio)) +
             1);
  dsp::Trace out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) {
    const double pos = static_cast<double>(i) * ratio;
    const std::size_t lo =
        std::min(static_cast<std::size_t>(pos), trace.size() - 1);
    const std::size_t hi = std::min(lo + 1, trace.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out[i] = trace[lo] + (trace[hi] - trace[lo]) * frac;
  }
  return out;
}

dsp::Trace apply_truncation(const dsp::Trace& trace, const TruncationFault& f,
                            stats::Rng& rng) {
  if (trace.empty()) return trace;
  const double keep = rng.uniform(std::clamp(f.min_keep, 0.0, 1.0), 1.0);
  const std::size_t len = std::max<std::size_t>(
      1, static_cast<std::size_t>(keep * static_cast<double>(trace.size())));
  return dsp::Trace(trace.begin(),
                    trace.begin() + static_cast<std::ptrdiff_t>(
                                        std::min(len, trace.size())));
}

dsp::Trace apply_slow_drift(const dsp::Trace& trace, double shift,
                            double max_code) {
  dsp::Trace out = trace;
  for (double& c : out) c = clamp_code(c + shift, max_code);
  return out;
}

dsp::Trace apply_overcurrent(const dsp::Trace& trace,
                             const OvercurrentFault& f, double max_code) {
  const double dominant_level = f.dominant_fraction * max_code;
  dsp::Trace out = trace;
  for (double& c : out) {
    // With gain 0 the factor is exactly 1.0 and with offset 0 the addend
    // is exactly 0.0, so the zero-parameter transform is bit-exact
    // identity for in-range codes (the no-op property the adversary
    // search and the tests rely on).
    const double driven = c >= dominant_level ? c * (1.0 + f.gain) : c;
    c = clamp_code(driven + f.offset, max_code);
  }
  return out;
}

dsp::Trace apply_corruption_burst(const dsp::Trace& trace,
                                  const CorruptionBurstFault& f,
                                  double max_code) {
  const double period = std::max(1.0, f.period_samples);
  const double duty = std::clamp(f.duty, 0.0, 1.0);
  dsp::Trace out = trace;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double cycles = static_cast<double>(i) / period + f.phase;
    const double frac = cycles - std::floor(cycles);
    if (frac < duty) {
      const double corruption =
          f.amplitude * std::sin(2.0 * 3.14159265358979323846 * cycles);
      out[i] = clamp_code(out[i] + corruption, max_code);
    }
  }
  return out;
}

bool duty_cycle_fires(std::uint64_t tick, double duty) {
  const double d = std::clamp(duty, 0.0, 1.0);
  // Fire when the running quota floor(tick * duty) advances over the
  // previous tick's quota — the classic Bresenham spacing, exact in
  // double for any realistic tick count.
  const double quota = std::floor(static_cast<double>(tick) * d);
  const double prev = std::floor(static_cast<double>(tick - 1) * d);
  return quota > prev;
}

FaultInjector::FaultInjector(FaultProfile profile, double max_code,
                             units::Seed64 seed)
    : profile_(std::move(profile)), max_code_(max_code), rng_(seed) {}

void FaultInjector::bind_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metric_applied_ = {};
    metric_traces_ = nullptr;
    return;
  }
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    metric_applied_[k] = registry->counter(
        "fault_activations_total",
        {{"kind", to_string(static_cast<FaultKind>(k))}});
  }
  metric_traces_ = registry->counter("fault_traces_total");
}

dsp::Trace FaultInjector::apply(const dsp::Trace& trace) {
  ++stats_.total_traces;
  if (metric_traces_ != nullptr) metric_traces_->add();
  dsp::Trace out = trace;
  bool any = false;
  const auto fire = [&](const auto& fault, FaultKind kind, auto&& transform) {
    // The Bernoulli draw happens for every configured fault on every
    // trace, so the random stream (and thus the whole corrupted capture
    // sequence) is a pure function of profile + seed.
    if (!fault || fault->probability <= 0.0) return;
    if (!rng_.bernoulli(fault->probability)) return;
    out = transform(*fault);
    ++stats_.applied[static_cast<std::size_t>(kind)];
    if (obs::Counter* c = metric_applied_[static_cast<std::size_t>(kind)]) {
      c->add();
    }
    any = true;
  };
  fire(profile_.clipping, FaultKind::kClipping, [&](const ClippingFault& f) {
    return apply_clipping(out, f, max_code_);
  });
  fire(profile_.dropout, FaultKind::kDropout, [&](const DropoutFault& f) {
    return apply_dropout(out, f, rng_);
  });
  fire(profile_.dc_shift, FaultKind::kDcShift, [&](const DcShiftFault& f) {
    return apply_dc_shift(out, f, max_code_, rng_);
  });
  fire(profile_.emi_burst, FaultKind::kEmiBurst, [&](const EmiBurstFault& f) {
    return apply_emi_burst(out, f, max_code_, rng_);
  });
  fire(profile_.clock_drift, FaultKind::kClockDrift,
       [&](const ClockDriftFault& f) { return apply_clock_drift(out, f, rng_); });
  fire(profile_.truncation, FaultKind::kTruncation,
       [&](const TruncationFault& f) { return apply_truncation(out, f, rng_); });
  fire(profile_.slow_drift, FaultKind::kSlowDrift,
       [&](const SlowDriftFault& f) {
         slow_drift_shift_ = std::clamp(slow_drift_shift_ + f.step,
                                        -f.max_shift, f.max_shift);
         return apply_slow_drift(out, slow_drift_shift_, max_code_);
       });
  fire(profile_.overcurrent, FaultKind::kOvercurrent,
       [&](const OvercurrentFault& f) {
         return apply_overcurrent(out, f, max_code_);
       });
  fire(profile_.corruption_burst, FaultKind::kCorruptionBurst,
       [&](const CorruptionBurstFault& f) {
         return apply_corruption_burst(out, f, max_code_);
       });
  fire(profile_.drift_masquerade, FaultKind::kDriftMasquerade,
       [&](const DriftMasqueradeFault& f) {
         ++masquerade_ticks_;
         if (duty_cycle_fires(masquerade_ticks_, f.duty)) {
           masquerade_shift_ = std::clamp(masquerade_shift_ + f.ramp_rate,
                                          -f.max_shift, f.max_shift);
         }
         return apply_slow_drift(out, masquerade_shift_, max_code_);
       });
  if (any) ++stats_.faulted_traces;
  return out;
}

}  // namespace faults
