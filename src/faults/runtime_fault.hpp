// Runtime-layer (supervision) fault plans.
//
// The analog layer (fault.hpp) corrupts what the tap records; this header
// models failures of the *monitor process itself* — a wedged worker
// thread, a checkpoint file corrupted on disk — so the soak harness can
// drive the supervisor's recovery paths deterministically.  Plans are
// plain data keyed on frame / commit indices (never wall time), so a plan
// + seed fully determines which recoveries fire and when.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace faults {

/// Thrown out of a stalled stage when the supervisor releases its gate.
/// The pipeline's per-frame exception containment absorbs it: the wedged
/// frame becomes one worker_error result and the worker thread survives.
struct StallReleased : std::runtime_error {
  StallReleased() : std::runtime_error("stalled stage released") {}
};

/// Deterministic wedge point for one worker thread.  The supervisor's
/// stage hook calls wait() for the planned frame, which blocks until the
/// watchdog decides the stage is dead and calls release(); the release
/// throws StallReleased out of the hook.  One-shot: once released the
/// gate stays open (wait() throws immediately), so a restart cannot
/// re-wedge on the same plan.
class StallGate {
 public:
  /// Blocks the calling worker until release(), then throws StallReleased.
  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    entered_ = true;
    cv_.wait(lock, [&] { return released_; });
    lock.unlock();
    throw StallReleased{};
  }

  /// Opens the gate for every current and future waiter.
  void release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

  /// True once a worker has reached wait() — the observable "wedged" state
  /// the watchdog's missed heartbeats correspond to.
  bool entered() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entered_;
  }

  bool released() const {
    std::lock_guard<std::mutex> lock(mu_);
    return released_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool entered_ = false;
  bool released_ = false;
};

/// Wedge the worker scoring global frame `frame_index` (the supervisor's
/// own monotone frame numbering, stable across pipeline restarts).  Costs
/// exactly that frame — absorbed as a worker_error — plus one watchdog
/// restart.
struct WorkerStallPlan {
  std::uint64_t frame_index = 0;
};

/// Corrupt the checkpoint file on disk after commit number `after_commit`
/// (1-based) lands: XOR `xor_mask` into the byte at `byte_offset` modulo
/// the file size.  The next load must detect the CRC mismatch and recover
/// from the last-good checkpoint instead.
struct CheckpointCorruptionPlan {
  std::uint64_t after_commit = 1;
  std::size_t byte_offset = 64;
  unsigned char xor_mask = 0x08;
};

/// Everything the soak harness can break in the runtime layer.  Analog
/// corruption — including the slow_poison() ramp that drives the drift
/// sentinel — stays in FaultProfile; these plans only break the monitor.
struct RuntimeFaultPlan {
  std::vector<WorkerStallPlan> stalls;
  std::vector<CheckpointCorruptionPlan> checkpoint_corruptions;
};

}  // namespace faults
